(* Tests for dr_workloads: every workload compiles and runs; the three
   bug case studies (Table 1) reproduce, replay, and slice to their root
   causes; Maple exposes them. *)

let test_registry_complete () =
  let names = Dr_workloads.Registry.names () in
  Alcotest.(check int) "6 bugs + 8 parsec + 5 specomp" 19 (List.length names);
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "pbzip2"; "Aget"; "mozilla"; "dcl"; "counter"; "condvar"; "blackscholes";
      "swaptions"; "fluidanimate"; "ferret"; "x264"; "canneal"; "dedup";
      "streamcluster"; "ammp"; "apsi"; "galgel"; "mgrid"; "wupwise" ]

let test_all_compile_and_run () =
  List.iter
    (fun (e : Dr_workloads.Registry.entry) ->
      if e.Dr_workloads.Registry.kind <> Dr_workloads.Registry.Bug then begin
        let prog = e.Dr_workloads.Registry.compile ~threads:4 ~iters:100 in
        let m = Dr_machine.Machine.create prog in
        let r =
          Dr_machine.Driver.run ~max_steps:20_000_000 m
            (Dr_machine.Driver.Round_robin { quantum = 20 })
        in
        match r with
        | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
        | r ->
          Alcotest.failf "%s did not exit cleanly: %a" e.Dr_workloads.Registry.name
            (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r)
            ()
      end)
    Dr_workloads.Registry.all

let test_workloads_deterministic () =
  (* same seed, same result — required for region logging to make sense *)
  List.iter
    (fun name ->
      let e = Option.get (Dr_workloads.Registry.find name) in
      let run () =
        let prog = e.Dr_workloads.Registry.compile ~threads:4 ~iters:80 in
        let m = Dr_machine.Machine.create prog in
        let _ =
          Dr_machine.Driver.run ~max_steps:20_000_000 m
            (Dr_machine.Driver.Seeded { seed = 11; max_quantum = 5 })
        in
        (Dr_machine.Machine.output_list m, Dr_machine.Machine.total_icount m)
      in
      Alcotest.(check bool) (name ^ " deterministic") true (run () = run ()))
    [ "blackscholes"; "canneal"; "ferret" ]

let test_threads_actually_run () =
  (* all four threads retire instructions in a 4-threaded run *)
  let e = Option.get (Dr_workloads.Registry.find "fluidanimate") in
  let prog = e.Dr_workloads.Registry.compile ~threads:4 ~iters:200 in
  let m = Dr_machine.Machine.create prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:20_000_000 m
      (Dr_machine.Driver.Round_robin { quantum = 10 })
  in
  Alcotest.(check int) "4 threads" 4 (Dr_machine.Machine.num_threads m);
  for tid = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "thread %d worked" tid)
      true
      ((Dr_machine.Machine.thread m tid).Dr_machine.Machine.icount > 100)
  done

let test_calibration () =
  let e = Option.get (Dr_workloads.Registry.find "blackscholes") in
  let target = 50_000 in
  let iters = Dr_workloads.Registry.iters_for e ~main_instrs:target () in
  let got = Dr_workloads.Registry.probe_main_icount e ~threads:4 ~iters in
  Alcotest.(check bool)
    (Printf.sprintf "calibrated %d iters gives >= %d main instrs (got %d)" iters
       target got)
    true (got >= target)

(* ---- the bug case studies ---- *)

let test_bugs_reproduce_and_replay () =
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      match Dr_workloads.Bugs.find_failing_seed b with
      | None -> Alcotest.failf "%s: no failing schedule found" b.Dr_workloads.Bugs.name
      | Some (seed, _) ->
        let prog = Dr_workloads.Bugs.compile b in
        (* capture the whole failing execution *)
        let pb, stats =
          match
            Dr_pinplay.Logger.log
              ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
              prog Dr_pinplay.Logger.Whole
          with
          | Ok r -> r
          | Error e ->
            Alcotest.failf "%s: log failed: %a" b.Dr_workloads.Bugs.name
              Dr_pinplay.Logger.pp_error e
        in
        (match stats.Dr_pinplay.Logger.stop with
        | Dr_machine.Driver.Terminated
            (Dr_machine.Machine.Assert_failed _ | Dr_machine.Machine.Fault _) ->
          ()
        | _ -> Alcotest.failf "%s: captured run did not fail" b.Dr_workloads.Bugs.name);
        (* deterministic replay reproduces the failure twice *)
        for _ = 1 to 2 do
          let _, reason = Dr_pinplay.Replayer.replay prog pb in
          match reason with
          | Dr_machine.Driver.Terminated
              (Dr_machine.Machine.Assert_failed _ | Dr_machine.Machine.Fault _) ->
            ()
          | r ->
            Alcotest.failf "%s: replay did not reproduce: %a"
              b.Dr_workloads.Bugs.name
              (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r)
              ()
        done)
    Dr_workloads.Bugs.all

let test_bug_slices_reach_root_cause () =
  List.iter
    (fun (b : Dr_workloads.Bugs.t) ->
      match Dr_workloads.Bugs.find_failing_seed b with
      | None -> Alcotest.failf "%s: no failing schedule" b.Dr_workloads.Bugs.name
      | Some (seed, _) ->
        let prog = Dr_workloads.Bugs.compile b in
        let pb, _ =
          match
            Dr_pinplay.Logger.log
              ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
              prog Dr_pinplay.Logger.Whole
          with
          | Ok r -> r
          | Error _ -> Alcotest.fail "log failed"
        in
        let c = Dr_slicing.Collector.collect prog pb in
        let gt = Dr_slicing.Global_trace.construct c in
        (* criterion: the failing instruction (last record of the trace) *)
        let crit =
          { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length gt - 1;
            crit_locs = None }
        in
        let slice =
          Dr_slicing.Slicer.compute ~pairs:c.Dr_slicing.Collector.pairs gt crit
        in
        let lines = Dr_slicing.Slicer.source_lines slice in
        Alcotest.(check bool)
          (Printf.sprintf "%s: root cause (line %d) in slice"
             b.Dr_workloads.Bugs.name b.Dr_workloads.Bugs.root_cause_line)
          true
          (List.mem b.Dr_workloads.Bugs.root_cause_line lines))
    Dr_workloads.Bugs.all

let test_maple_exposes_aget () =
  (* Maple's active scheduler finds the Aget lost update without a seed
     search *)
  let b = Option.get (Dr_workloads.Bugs.find "Aget") in
  let prog = Dr_workloads.Bugs.compile b in
  match Dr_maple.Active.expose ~max_candidates:32 prog with
  | Some exposed -> (
    match exposed.Dr_maple.Active.outcome with
    | Dr_machine.Machine.Assert_failed _ -> ()
    | _ -> Alcotest.fail "unexpected outcome")
  | None ->
    (* Aget also fails under many plain schedules; Maple not finding it
       via candidates would be odd *)
    Alcotest.fail "Maple did not expose the Aget race"

let () =
  Alcotest.run "workloads"
    [ ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "all compile and run" `Quick test_all_compile_and_run;
          Alcotest.test_case "deterministic" `Quick test_workloads_deterministic;
          Alcotest.test_case "threads run" `Quick test_threads_actually_run;
          Alcotest.test_case "calibration" `Quick test_calibration ] );
      ( "bug case studies",
        [ Alcotest.test_case "reproduce and replay" `Quick
            test_bugs_reproduce_and_replay;
          Alcotest.test_case "slices reach root cause" `Quick
            test_bug_slices_reach_root_cause;
          Alcotest.test_case "maple exposes aget" `Quick test_maple_exposes_aget ] ) ]
