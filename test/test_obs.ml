(* Tests for the observability library (dr_obs): span nesting and
   mismatched-stop detection, histogram bucket boundaries and quantiles,
   Chrome trace JSON round-trip, run-report schema validation, the
   metrics registry, and the disabled-mode guarantee that nothing is
   recorded when the gate is off. *)

module Obs = Dr_obs.Obs
module Histogram = Dr_obs.Histogram
module Metrics = Dr_obs.Metrics
module Report = Dr_obs.Report
module Chrome_trace = Dr_obs.Chrome_trace
module J = Dr_util.Json

(* each test starts from a clean recorder, gate on unless stated *)
let fresh ?(enabled = true) () =
  Obs.reset ();
  Obs.set_enabled enabled

let span_by_name name =
  let found =
    Array.to_list (Obs.spans ())
    |> List.filter (fun s -> s.Obs.sp_name = name)
  in
  match found with
  | [ s ] -> s
  | [] -> Alcotest.failf "span %S not recorded" name
  | _ -> Alcotest.failf "span %S recorded more than once" name

(* ---- spans ---- *)

let test_span_nesting () =
  fresh ();
  let outer = Obs.start ~cat:"test" "outer" in
  let inner = Obs.start ~cat:"test" ~tid:3 "inner" in
  Obs.add_attr inner "k" (Obs.Int 42);
  Obs.stop inner;
  Obs.stop outer ~attrs:[ ("done", Obs.Bool true) ];
  Alcotest.(check int) "two spans" 2 (Obs.span_count ());
  Alcotest.(check int) "no mismatches" 0 (Obs.mismatch_count ());
  let i = span_by_name "inner" and o = span_by_name "outer" in
  Alcotest.(check int) "inner depth" 1 i.Obs.sp_depth;
  Alcotest.(check int) "outer depth" 0 o.Obs.sp_depth;
  Alcotest.(check int) "inner tid" 3 i.Obs.sp_tid;
  Alcotest.(check string) "inner cat" "test" i.Obs.sp_cat;
  Alcotest.(check bool) "inner attr kept"
    true (List.mem_assoc "k" i.Obs.sp_attrs);
  Alcotest.(check bool) "stop attrs kept"
    true (List.mem_assoc "done" o.Obs.sp_attrs);
  (* the child's interval is contained in the parent's *)
  Alcotest.(check bool) "child starts after parent" true
    (i.Obs.sp_start_s >= o.Obs.sp_start_s);
  Alcotest.(check bool) "child ends before parent" true
    (i.Obs.sp_start_s +. i.Obs.sp_dur_s
    <= o.Obs.sp_start_s +. o.Obs.sp_dur_s +. 1e-9)

let test_with_span () =
  fresh ();
  let r =
    Obs.with_span ~cat:"test" "ws" (fun sp ->
        Obs.add_attr sp "n" (Obs.Int 7);
        "result")
  in
  Alcotest.(check string) "returns f's value" "result" r;
  let s = span_by_name "ws" in
  Alcotest.(check bool) "attr attached" true (List.mem_assoc "n" s.Obs.sp_attrs);
  (* the span is recorded even when f raises *)
  (try
     Obs.with_span ~cat:"test" "raises" (fun _ -> failwith "boom")
   with Failure _ -> ());
  let _ = span_by_name "raises" in
  Alcotest.(check int) "no mismatches" 0 (Obs.mismatch_count ())

let test_mismatched_stop () =
  fresh ();
  let outer = Obs.start "outer" in
  let _inner = Obs.start "inner" in
  (* stopping the outer span closes the still-open inner one and records
     a diagnostic *)
  Obs.stop outer;
  Alcotest.(check int) "both spans recorded" 2 (Obs.span_count ());
  Alcotest.(check int) "one mismatch" 1 (Obs.mismatch_count ());
  (* stopping an already-closed token records a diagnostic only *)
  Obs.stop outer;
  Alcotest.(check int) "still two spans" 2 (Obs.span_count ());
  Alcotest.(check int) "two mismatches" 2 (Obs.mismatch_count ());
  Alcotest.(check int) "messages match count" 2
    (List.length (Obs.mismatch_messages ()))

(* Regression: reset used to leave next_id where it was, so token
   values depended on how many spans every earlier test recorded. *)
let test_reset_token_ids () =
  fresh ();
  let a = Obs.start "a" in
  let b = Obs.start "b" in
  Obs.stop b;
  Obs.stop a;
  Alcotest.(check bool) "tokens distinct" true (a <> b);
  fresh ();
  let a' = Obs.start "a-again" in
  Obs.stop a';
  Alcotest.(check int) "token ids restart after reset" a a';
  Alcotest.(check int) "old spans dropped" 1 (Obs.span_count ())

let test_disabled_mode () =
  fresh ~enabled:false ();
  let tok = Obs.start "ghost" in
  Alcotest.(check int) "start returns none" Obs.none tok;
  Obs.add_attr tok "k" (Obs.Int 1);
  Obs.stop tok;
  let r = Obs.with_span "ghost2" (fun sp -> sp) in
  Alcotest.(check int) "with_span passes none" Obs.none r;
  Alcotest.(check int) "no spans recorded" 0 (Obs.span_count ());
  Alcotest.(check int) "no mismatches" 0 (Obs.mismatch_count ());
  let h = Histogram.create "test.disabled" in
  Histogram.observe h 5.0;
  Alcotest.(check int) "observe gated off" 0 (Histogram.count h);
  Histogram.record h 5.0;
  Alcotest.(check int) "record ungated" 1 (Histogram.count h)

(* ---- histograms ---- *)

let test_histogram_buckets () =
  (* bucket_of and bucket_bounds agree: every sample lands in the bucket
     whose bounds contain it *)
  let check v =
    let b = Histogram.bucket_of v in
    let lo, hi = Histogram.bucket_bounds b in
    Alcotest.(check bool)
      (Printf.sprintf "%g in [%g, %g)" v lo hi)
      true
      (v >= lo && (v < hi || hi = Float.infinity))
  in
  List.iter check
    [ 1e-9; 0.5; 0.999; 1.0; 1.5; 2.0; 3.0; 4.0; 1024.0; 1e6; 1e12 ];
  (* power-of-two boundaries open a new bucket *)
  Alcotest.(check int) "2.0 above 1.99" (Histogram.bucket_of 1.99 + 1)
    (Histogram.bucket_of 2.0);
  Alcotest.(check int) "same bucket within [2,4)" (Histogram.bucket_of 2.0)
    (Histogram.bucket_of 3.999);
  (* absorb-below and absorb-above *)
  Alcotest.(check int) "zero in bucket 0" 0 (Histogram.bucket_of 0.0);
  Alcotest.(check int) "negative in bucket 0" 0 (Histogram.bucket_of (-7.0));
  Alcotest.(check int) "huge in last bucket" (Histogram.num_buckets - 1)
    (Histogram.bucket_of 1e300);
  let lo0, _ = Histogram.bucket_bounds 0 in
  let _, hi_last = Histogram.bucket_bounds (Histogram.num_buckets - 1) in
  Alcotest.(check (float 0.0)) "bucket 0 lo" 0.0 lo0;
  Alcotest.(check bool) "last bucket open" true (hi_last = Float.infinity)

let test_histogram_quantiles () =
  let h = Histogram.create "test.q" in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5050.0 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Histogram.mean h);
  (* bucket-resolution upper bounds: rank 50 is 50, in [32,64) -> 64;
     ranks 90 and 99 land in [64,128) whose bound clamps to max=100 *)
  Alcotest.(check (float 1e-9)) "p50" 64.0 (Histogram.quantile h 0.50);
  Alcotest.(check (float 1e-9)) "p90" 100.0 (Histogram.quantile h 0.90);
  Alcotest.(check (float 1e-9)) "p99" 100.0 (Histogram.quantile h 0.99);
  (* quantiles never under-report: bound >= exact rank value *)
  List.iter
    (fun q ->
      let exact = Float.ceil (q *. 100.0) in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g conservative" q)
        true
        (Histogram.quantile h q >= exact))
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  Histogram.reset h;
  Alcotest.(check int) "reset count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.quantile h 0.5);
  (* a single sample pins every quantile to itself *)
  Histogram.record h 42.0;
  Alcotest.(check (float 1e-9)) "singleton p50" 42.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "singleton p99" 42.0 (Histogram.quantile h 0.99)

(* ---- Chrome trace export ---- *)

let test_chrome_trace_roundtrip () =
  fresh ();
  Obs.with_span ~cat:"phase1" ~tid:2 "alpha" (fun sp ->
      Obs.add_attr sp "items" (Obs.Int 5);
      Obs.with_span ~cat:"phase1" "beta" (fun _ -> ()));
  let doc = Chrome_trace.to_json () in
  (* round-trip through the JSON printer/parser *)
  let doc =
    match J.parse (J.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "trace does not re-parse: %s" e
  in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  (* process_name + thread_name for tracks 0 and 2 + two spans *)
  Alcotest.(check int) "event count" 5 (List.length events);
  let str k e = Option.bind (J.member k e) J.to_str in
  let num k e = Option.bind (J.member k e) J.to_float in
  let metas, xs = List.partition (fun e -> str "ph" e = Some "M") events in
  Alcotest.(check int) "three metadata events" 3 (List.length metas);
  (* every distinct track is labelled *)
  let thread_names =
    List.filter (fun e -> str "name" e = Some "thread_name") metas
  in
  Alcotest.(check int) "two thread_name events" 2 (List.length thread_names);
  let label_of_track t =
    List.find_opt (fun e -> num "tid" e = Some t) thread_names
    |> Fun.flip Option.bind (fun e ->
           Option.bind (J.member "args" e) (fun a ->
               Option.bind (J.member "name" a) J.to_str))
  in
  Alcotest.(check (option string)) "main track labelled" (Some "tid 0 (main)")
    (label_of_track 0.0);
  Alcotest.(check (option string)) "tid-2 track labelled"
    (Some "tid 2 (main)") (label_of_track 2.0);
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "ph" (Some "X") (str "ph" e);
      Alcotest.(check bool) "has name" true (str "name" e <> None);
      Alcotest.(check bool) "has tid" true (num "tid" e <> None);
      Alcotest.(check bool) "ts >= 0" true (num "ts" e >= Some 0.0);
      Alcotest.(check bool) "dur >= 0" true (num "dur" e >= Some 0.0))
    xs;
  let alpha = List.find (fun e -> str "name" e = Some "alpha") xs in
  Alcotest.(check (option (float 0.0))) "alpha tid" (Some 2.0)
    (num "tid" alpha);
  let args =
    match J.member "args" alpha with Some a -> a | None -> J.Obj []
  in
  Alcotest.(check (option (float 0.0))) "alpha args.items" (Some 5.0)
    (Option.bind (J.member "items" args) J.to_float)

(* ---- run report ---- *)

let test_report_validate () =
  fresh ();
  let c = Metrics.counter "test.report.counter" in
  Metrics.bump c;
  let h = Histogram.get "test.report.hist" in
  Histogram.observe h 3.0;
  Histogram.observe h 300.0;
  Obs.with_span ~cat:"test" "report-span" (fun _ -> ());
  let doc = Report.document ~label:"unit-test" () in
  (match Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* survives a print/parse round-trip *)
  (match J.parse (J.to_string doc) with
  | Ok d -> (
    match Report.validate d with
    | Ok () -> ()
    | Error e -> Alcotest.failf "re-parsed report invalid: %s" e)
  | Error e -> Alcotest.failf "report does not re-parse: %s" e);
  (* a wrong schema string is rejected *)
  let mutated =
    match doc with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", J.Str "drdebug-report-v0")
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "report not an object"
  in
  (match Report.validate mutated with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong schema version accepted");
  (* a missing field is rejected *)
  let missing =
    match doc with
    | J.Obj fields -> J.Obj (List.filter (fun (k, _) -> k <> "phases") fields)
    | _ -> assert false
  in
  (match Report.validate missing with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing phases accepted");
  (* the recorded span shows up as a phase with sane stats *)
  let phases =
    match J.member "phases" doc with Some (J.Obj l) -> l | _ -> []
  in
  Alcotest.(check bool) "span aggregated into a phase" true
    (List.mem_assoc "report-span" phases)

(* ---- OpenMetrics-style export ---- *)

let test_openmetrics_render () =
  fresh ();
  (* touch the cache counters the export derives hit rates from *)
  Metrics.add (Metrics.counter "segstore.hits") 3;
  Metrics.bump (Metrics.counter "segstore.misses");
  Metrics.add (Metrics.counter "reexec.window_hits") 2;
  Metrics.bump (Metrics.counter "reexec.window_misses");
  Metrics.time (Metrics.timer "test.om.timer") (fun () -> ());
  Histogram.observe (Histogram.get "test.om.hist") 5.0;
  Obs.set_enabled false;
  let text = Dr_obs.Openmetrics.render () in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i =
      i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "render has %S" needle) true
        (contains needle))
    [ "# TYPE segstore.hits counter"; "segstore.hits 3";
      "segstore.misses 1"; "reexec.window_hits 2"; "reexec.window_misses 1";
      "segstore.hit_rate 0.75"; "reexec.window_hit_rate";
      "test.om.timer_count 1"; "test.om.hist_count 1"; "# EOF\n" ];
  (* the same renderer applied to a stored report document *)
  let doc = Report.document ~label:"om-test" () in
  match Dr_obs.Openmetrics.of_report doc with
  | Error e -> Alcotest.failf "of_report failed: %s" e
  | Ok text' ->
    Alcotest.(check bool) "of_report carries the counters" true
      (let tl = String.length text' in
       let needle = "segstore.hits 3" in
       let nl = String.length needle in
       let rec go i =
         i + nl <= tl && (String.sub text' i nl = needle || go (i + 1))
       in
       go 0)

(* ---- report diffing ---- *)

let diff_doc ~slice_s ~prep_s =
  J.Obj
    [ ("schema", J.Str "drdebug-report-v1");
      ("label", J.Str "diff-test");
      ("counters", J.Obj []);
      ( "timers",
        J.Obj
          [ ( "slicer.slice",
              J.Obj [ ("seconds", J.Num slice_s); ("events", J.int 4) ] );
            ( "lp.prepare",
              J.Obj [ ("seconds", J.Num prep_s); ("events", J.int 1) ] ) ] );
      ("histograms", J.Obj []);
      ("phases", J.Obj []);
      ("span_total", J.int 0);
      ("span_mismatches", J.int 0) ]

let test_report_diff () =
  let base = diff_doc ~slice_s:0.1 ~prep_s:0.02 in
  (* identical documents: nothing past any threshold *)
  (match Report.diff ~threshold_pct:10.0 base base with
  | Error e -> Alcotest.failf "identical diff failed: %s" e
  | Ok r ->
    Alcotest.(check int) "identical: no regressions" 0
      (List.length r.Report.regressions);
    Alcotest.(check int) "identical: no improvements" 0
      (List.length r.Report.improvements);
    Alcotest.(check int) "identical: both timers compared" 2
      r.Report.compared);
  (* +50% on one timer, -50% on the other *)
  let cur = diff_doc ~slice_s:0.15 ~prep_s:0.01 in
  (match Report.diff ~threshold_pct:10.0 base cur with
  | Error e -> Alcotest.failf "regressed diff failed: %s" e
  | Ok r -> (
    Alcotest.(check int) "one regression" 1 (List.length r.Report.regressions);
    Alcotest.(check int) "one improvement" 1
      (List.length r.Report.improvements);
    match r.Report.regressions with
    | [ d ] ->
      Alcotest.(check string) "regression names the timer"
        "timers.slicer.slice.seconds" d.Report.d_name;
      Alcotest.(check bool) "pct is ~+50" true
        (Float.abs (d.Report.d_pct -. 50.0) < 1e-6)
    | _ -> assert false));
  (* the same +50% under a 60% threshold is quiet *)
  (match Report.diff ~threshold_pct:60.0 base cur with
  | Error e -> Alcotest.failf "lenient diff failed: %s" e
  | Ok r ->
    Alcotest.(check int) "under threshold: no regressions" 0
      (List.length r.Report.regressions));
  (* a document that is not a report is rejected *)
  match Report.diff ~threshold_pct:10.0 base (J.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-report accepted by diff"

let test_metrics_registry () =
  (* registration is idempotent: same name -> same handle *)
  let a = Metrics.counter "test.reg.a" in
  let a' = Metrics.counter "test.reg.a" in
  Alcotest.(check bool) "counter handle shared" true (a == a');
  let t = Metrics.timer "test.reg.t" in
  let t' = Metrics.timer "test.reg.t" in
  Alcotest.(check bool) "timer handle shared" true (t == t');
  Metrics.bump a;
  Metrics.add a 9;
  Alcotest.(check int) "count" 10 (Metrics.count a);
  Metrics.time t (fun () -> ());
  Alcotest.(check int) "timed events" 1 (Metrics.events t);
  Alcotest.(check bool) "seconds non-negative" true (Metrics.seconds t >= 0.0);
  (* report lists metrics sorted by name, independent of registration
     order ("b" registered last still sorts before "t") *)
  let b = Metrics.counter "test.reg.b" in
  Metrics.bump b;
  let names = List.map fst (Metrics.report ()) in
  let rec index i = function
    | [] -> -1
    | n :: rest -> if n = i then 0 else 1 + index i rest
  in
  let ia = index "test.reg.a" names
  and it = index "test.reg.t" names
  and ib = index "test.reg.b" names in
  Alcotest.(check bool) "all registered" true (ia >= 0 && it >= 0 && ib >= 0);
  Alcotest.(check bool) "name-sorted order" true (ia < ib && ib < it)

(* Two domains registering handles concurrently: every name lands in the
   registry exactly once, racing registrations of the same name share
   one handle, and the report is name-sorted — byte-identical whatever
   the arrival interleaving (the multi-domain registration fix). *)
let test_metrics_parallel_registration () =
  let names d = List.init 16 (fun i -> Printf.sprintf "test.par.%d.%02d" d i) in
  let register d () =
    List.iter
      (fun n -> Metrics.bump (Metrics.counter n))
      (names d)
  in
  let other = Domain.spawn (register 1) in
  register 0 ();
  Domain.join other;
  let report = Metrics.report () in
  List.iter
    (fun n ->
      match List.assoc_opt n report with
      | Some (`Counter 1) -> ()
      | Some _ -> Alcotest.failf "%s: wrong count" n
      | None -> Alcotest.failf "%s: missing from report" n)
    (names 0 @ names 1);
  let ns = List.map fst report in
  Alcotest.(check bool) "report name-sorted" true
    (List.sort String.compare ns = ns);
  (* racing registration of the SAME name yields one shared handle *)
  let racer = Domain.spawn (fun () -> Metrics.counter "test.par.shared") in
  let c = Metrics.counter "test.par.shared" in
  let c' = Domain.join racer in
  Alcotest.(check bool) "same handle across domains" true (c == c')

(* Regression for the wall-clock vs monotonic mismatch: a backwards
   clock step between a timer's start and stop must never accumulate a
   negative duration.  [Timer.advance_to] pushes the shared ratchet
   ahead of real time, which is exactly the state after a backwards NTP
   step — subsequent reads stand still instead of going backwards. *)
let test_metrics_time_never_negative () =
  let t = Metrics.timer "test.mono.t" in
  Dr_util.Timer.advance_to (Dr_util.Timer.now () +. 60.0);
  let before = Metrics.seconds t in
  Metrics.time t (fun () -> ());
  let dt = Metrics.seconds t -. before in
  Alcotest.(check bool) "never negative" true (dt >= 0.0);
  Alcotest.(check (float 0.0)) "frozen clock reads as zero-length" 0.0 dt;
  Alcotest.(check int) "event still counted" 1 (Metrics.events t);
  (* the raw clock itself never decreases across reads *)
  let prev = ref (Dr_util.Timer.now ()) in
  for _ = 1 to 1000 do
    let n = Dr_util.Timer.now () in
    if n < !prev then
      Alcotest.failf "clock went backwards: %.9f after %.9f" n !prev;
    prev := n
  done;
  (* Timer.time reports the same non-negative elapsed figure *)
  let (), d = Dr_util.Timer.time (fun () -> ()) in
  Alcotest.(check bool) "Timer.time non-negative" true (d >= 0.0)

let () =
  let finally () = Obs.set_enabled false in
  Fun.protect ~finally (fun () ->
      Alcotest.run "obs"
        [ ( "span",
            [ Alcotest.test_case "nesting" `Quick test_span_nesting;
              Alcotest.test_case "with_span" `Quick test_with_span;
              Alcotest.test_case "mismatched stop" `Quick test_mismatched_stop;
              Alcotest.test_case "reset restarts token ids" `Quick
                test_reset_token_ids;
              Alcotest.test_case "disabled mode" `Quick test_disabled_mode ] );
          ( "histogram",
            [ Alcotest.test_case "buckets" `Quick test_histogram_buckets;
              Alcotest.test_case "quantiles" `Quick test_histogram_quantiles ]
          );
          ( "sinks",
            [ Alcotest.test_case "chrome trace round-trip" `Quick
                test_chrome_trace_roundtrip;
              Alcotest.test_case "report validate" `Quick test_report_validate;
              Alcotest.test_case "openmetrics render" `Quick
                test_openmetrics_render;
              Alcotest.test_case "report diff" `Quick test_report_diff ] );
          ( "metrics",
            [ Alcotest.test_case "registry" `Quick test_metrics_registry;
              Alcotest.test_case "parallel registration determinism" `Quick
                test_metrics_parallel_registration;
              (* last: it steps the shared clock ratchet ahead of real
                 time, freezing durations for the rest of the process *)
              Alcotest.test_case "timer never negative" `Quick
                test_metrics_time_never_negative ] ) ])
