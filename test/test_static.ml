(* Tests for dr_static: the generic dataflow engine, the per-function
   analyses, the interprocedural call graph, the static PDG (whose
   backward slices must bound every dynamic slice — the property
   conformance oracle 6 enforces on fuzzed programs), the lint passes
   and the drdebug-analyze-v1 report round-trip. *)

module Bitset = Dr_util.Bitset
module Dataflow = Dr_static.Dataflow
module Analysis = Dr_static.Analysis
module Callgraph = Dr_static.Callgraph
module Pdg = Dr_static.Pdg
module Lint = Dr_static.Lint
module Report = Dr_static.Report
module Json = Dr_util.Json
open Dr_isa

let raw code = Program.make ~name:"raw" ~entry:0 (Array.to_list code)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let collect ?(seed = 3) prog =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
      prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> Dr_slicing.Collector.collect ~refine:true prog pb
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

(* ---- dataflow engine ---- *)

(* Forward may-problem on a diamond 0 -> {1,2} -> 3.  Node i generates
   fact i (node 3 nothing), node 1 kills fact 0, and the entry node is
   seeded with boundary fact 3. *)
let test_dataflow_forward_diamond () =
  let succs = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let preds = [| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |] in
  let one f =
    let b = Bitset.create 4 in
    Bitset.add b f;
    b
  in
  let r =
    Dataflow.solve ~num_nodes:4 ~num_facts:4 ~direction:Dataflow.Forward
      ~succs:(fun i -> succs.(i))
      ~preds:(fun i -> preds.(i))
      ~gen:(fun i -> if i = 3 then Bitset.create 4 else one i)
      ~kill:(fun i -> if i = 1 then one 0 else Bitset.create 4)
      ~entry:(fun i -> if i = 0 then Some (one 3) else None)
      ()
  in
  Alcotest.(check bool) "entry fact at node 0" true (Bitset.mem r.Dataflow.in_.(0) 3);
  Alcotest.(check bool) "node 1 kills fact 0" false (Bitset.mem r.Dataflow.out_.(1) 0);
  Alcotest.(check bool) "fact 0 survives via node 2" true (Bitset.mem r.Dataflow.in_.(3) 0);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "fact %d meets at node 3" f)
        true
        (Bitset.mem r.Dataflow.in_.(3) f))
    [ 0; 1; 2; 3 ]

(* Backward problem on a line 0 -> 1 -> 2: node 2 generates fact 0,
   node 1 kills it, so it is live across edge 1->2 but not 0->1. *)
let test_dataflow_backward_line () =
  let succs = [| [ 1 ]; [ 2 ]; [] |] in
  let preds = [| []; [ 0 ]; [ 1 ] |] in
  let one () =
    let b = Bitset.create 1 in
    Bitset.add b 0;
    b
  in
  let r =
    Dataflow.solve ~num_nodes:3 ~num_facts:1 ~direction:Dataflow.Backward
      ~succs:(fun i -> succs.(i))
      ~preds:(fun i -> preds.(i))
      ~gen:(fun i -> if i = 2 then one () else Bitset.create 1)
      ~kill:(fun i -> if i = 1 then one () else Bitset.create 1)
      ()
  in
  Alcotest.(check bool) "generated at node 2" true (Bitset.mem r.Dataflow.in_.(2) 0);
  Alcotest.(check bool) "live across 1->2" true (Bitset.mem r.Dataflow.out_.(1) 0);
  Alcotest.(check bool) "killed at node 1" false (Bitset.mem r.Dataflow.in_.(1) 0);
  Alcotest.(check bool) "dead before node 1" false (Bitset.mem r.Dataflow.out_.(0) 0)

(* ---- per-function analyses ---- *)

let test_liveness () =
  let code =
    [| Instr.Mov (Reg.r1, Instr.Imm 5); Instr.Mov (Reg.r2, Instr.Imm 7);
       Instr.Bin (Instr.Add, Reg.r0, Reg.r1, Instr.Reg Reg.r2); Instr.Ret |]
  in
  let l = Analysis.liveness code ~fentry:0 ~fend:4 () in
  Alcotest.(check bool) "r1 live into use" true (Bitset.mem l.Analysis.live_in.(2) Reg.r1);
  Alcotest.(check bool) "r2 live into use" true (Bitset.mem l.Analysis.live_in.(2) Reg.r2);
  Alcotest.(check bool) "r1 dead before its def" false
    (Bitset.mem l.Analysis.live_in.(0) Reg.r1);
  Alcotest.(check bool) "r2 live between defs" true
    (Bitset.mem l.Analysis.live_in.(1) Reg.r2 = false
    && Bitset.mem l.Analysis.live_out.(1) Reg.r2)

let test_maybe_uninit_flagged () =
  let code = [| Instr.Bin (Instr.Add, Reg.r0, Reg.r6, Instr.Imm 1); Instr.Ret |] in
  match Analysis.maybe_uninit code ~fentry:0 ~fend:2 () with
  | [ u ] ->
    Alcotest.(check int) "pc" 0 u.Analysis.u_pc;
    Alcotest.(check int) "reg" Reg.r6 u.Analysis.u_reg
  | l -> Alcotest.failf "expected exactly one finding, got %d" (List.length l)

let test_maybe_uninit_clean () =
  (* argument registers arrive initialized *)
  let args = [| Instr.Bin (Instr.Add, Reg.r0, Reg.r1, Instr.Imm 1); Instr.Ret |] in
  Alcotest.(check int) "arg regs not flagged" 0
    (List.length (Analysis.maybe_uninit args ~fentry:0 ~fend:2 ()));
  (* prologue Push of a callee-saved register is the save idiom, not a use *)
  let save =
    [| Instr.Push Reg.r6; Instr.Mov (Reg.r6, Instr.Imm 1); Instr.Pop Reg.r6;
       Instr.Ret |]
  in
  Alcotest.(check int) "prologue save not flagged" 0
    (List.length (Analysis.maybe_uninit save ~fentry:0 ~fend:4 ()));
  (* a call conservatively initializes the caller-saved set *)
  let call =
    [| Instr.Call 3; Instr.Bin (Instr.Add, Reg.r0, Reg.r0, Instr.Imm 1);
       Instr.Ret; Instr.Ret |]
  in
  Alcotest.(check int) "post-call caller-saved not flagged" 0
    (List.length (Analysis.maybe_uninit call ~fentry:0 ~fend:3 ()))

(* ---- call graph ---- *)

let build_cg ?indirect_targets prog =
  let cfg = Dr_cfg.Cfg.build ?indirect_targets prog in
  Callgraph.build ?indirect_targets prog ~cfg

let test_callgraph_direct_and_spawn () =
  (* main spawns a worker (address materialized at pc 0) and calls a
     helper directly; worker entries must look like prologues to be
     recognized as address-taken. *)
  let prog =
    raw
      [| Instr.Mov (Reg.r1, Instr.Imm 6); Instr.Sys Instr.Spawn; Instr.Call 4;
         Instr.Sys Instr.Exit; (* helper *) Instr.Ret; Instr.Nop;
         (* worker *) Instr.Push Reg.fp; Instr.Pop Reg.fp; Instr.Ret |]
  in
  let cg = build_cg prog in
  Alcotest.(check int) "three functions" 3 (Callgraph.num_functions cg);
  Alcotest.(check (list int)) "worker is address-taken" [ 6 ]
    (List.map (fun i -> cg.Callgraph.entries.(i)) cg.Callgraph.address_taken);
  let kinds =
    List.map (fun s -> s.Callgraph.kind) cg.Callgraph.sites
  in
  Alcotest.(check bool) "spawn site recorded" true
    (List.mem Callgraph.Spawn kinds);
  Alcotest.(check bool) "direct site recorded" true
    (List.mem Callgraph.Direct kinds);
  Alcotest.(check (list int)) "main calls helper and worker" [ 1; 2 ]
    cg.Callgraph.callees.(0);
  let reach = Callgraph.reachable_from_entry cg ~entry_pc:prog.Program.entry in
  Alcotest.(check (array bool)) "all reachable through spawn edge"
    [| true; true; true |] reach

let test_callgraph_unreachable_function () =
  (* the orphan's address is taken but nothing spawns or calls
     indirectly, so no edge reaches it *)
  let prog =
    raw
      [| Instr.Call 3; Instr.Mov (Reg.r2, Instr.Imm 5); Instr.Sys Instr.Exit;
         (* helper *) Instr.Ret; Instr.Nop;
         (* orphan *) Instr.Push Reg.fp; Instr.Pop Reg.fp; Instr.Ret |]
  in
  let cg = build_cg prog in
  Alcotest.(check int) "three functions" 3 (Callgraph.num_functions cg);
  let reach = Callgraph.reachable_from_entry cg ~entry_pc:prog.Program.entry in
  Alcotest.(check (array bool)) "orphan unreachable" [| true; true; false |]
    reach

let test_callgraph_callind_resolution () =
  let prog =
    raw
      [| Instr.Mov (Reg.r1, Instr.Imm 3); Instr.Callind Reg.r1;
         Instr.Sys Instr.Exit; (* target *) Instr.Push Reg.fp;
         Instr.Pop Reg.fp; Instr.Ret |]
  in
  let unresolved = build_cg prog in
  Alcotest.(check (list int)) "unresolved callind pc" [ 1 ]
    unresolved.Callgraph.unresolved_callind;
  (* conservatively: every address-taken function is a callee *)
  Alcotest.(check (list int)) "conservative callees" [ 1 ]
    unresolved.Callgraph.callees.(0);
  let resolved = build_cg ~indirect_targets:[ (1, [ 3 ]) ] prog in
  Alcotest.(check (list int)) "resolved: no unresolved callind" []
    resolved.Callgraph.unresolved_callind;
  Alcotest.(check (list int)) "resolved callees" [ 1 ]
    resolved.Callgraph.callees.(0)

(* ---- static PDG ---- *)

let test_pdg_resolution_flag () =
  let prog =
    raw
      [| Instr.Mov (Reg.r1, Instr.Imm 3); Instr.Jind Reg.r1; Instr.Sys Instr.Exit;
         Instr.Mov (Reg.r0, Instr.Imm 1); Instr.Sys Instr.Exit |]
  in
  Alcotest.(check bool) "unrefined jind leaves the pdg unresolved" false
    (Pdg.fully_resolved (Pdg.build prog));
  Alcotest.(check bool) "refined jind resolves the pdg" true
    (Pdg.fully_resolved (Pdg.build ~indirect_targets:[ (1, [ 3 ]) ] prog))

let test_pdg_straightline_slice () =
  (* the load depends on the store (one-global-cell memory), the store's
     operands, and the address def; the unrelated def stays out *)
  let prog =
    raw
      [| Instr.Mov (Reg.r1, Instr.Imm 100); Instr.Mov (Reg.r2, Instr.Imm 7);
         Instr.Store (Reg.r1, 0, Reg.r2); Instr.Mov (Reg.r3, Instr.Imm 9);
         Instr.Load (Reg.r4, Reg.r1, 0); Instr.Sys Instr.Exit |]
  in
  let pdg = Pdg.build prog in
  let slice = Pdg.backward_slice pdg ~pc:4 in
  List.iter
    (fun pc ->
      Alcotest.(check bool) (Printf.sprintf "pc %d in slice" pc) true
        (Bitset.mem slice pc))
    [ 0; 1; 2; 4 ];
  Alcotest.(check bool) "unrelated def out of slice" false (Bitset.mem slice 3)

(* The soundness property behind conformance oracle 6: on a program
   whose refined CFG is fully resolved, the pc set of a dynamic slice is
   contained in the static backward slice of its criterion pc. *)
let check_static_bounds_dynamic prog =
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let pdg = Pdg.build ~indirect_targets:c.Dr_slicing.Collector.indirect_targets prog in
  if Pdg.fully_resolved pdg then begin
    let len = Dr_slicing.Global_trace.length gt in
    let crit = { Dr_slicing.Slicer.crit_pos = len - 1; crit_locs = None } in
    let slice = Dr_slicing.Slicer.compute gt crit in
    let crit_pc = (Dr_slicing.Global_trace.record gt crit.Dr_slicing.Slicer.crit_pos).Dr_slicing.Trace.pc in
    let bound = Pdg.backward_slice pdg ~pc:crit_pc in
    Array.iter
      (fun pos ->
        let pc = (Dr_slicing.Global_trace.record gt pos).Dr_slicing.Trace.pc in
        if not (Bitset.mem bound pc) then
          Alcotest.failf
            "%s: dynamic slice pc %d escapes the static bound of pc %d"
            prog.Program.name pc crit_pc)
      slice.Dr_slicing.Slicer.positions;
    true
  end
  else false

let test_pdg_bounds_dynamic_switch () =
  (* every case body executes, so the dynamic run fully refines the jump
     table: the check must actually run, not pass vacuously *)
  let src =
    {|fn pick(int x) {
  int r = 0;
  switch (x) {
    case 0: r = 11; break;
    case 1: r = 22; break;
    default: r = 99; break;
  }
  return r;
}
fn main() {
  int acc = 0;
  for (int i = 0; i < 4; i = i + 1) {
    acc = acc + pick(i);
  }
  assert(acc == 231, "acc");
}|}
  in
  Alcotest.(check bool) "switch program is fully resolved and bounded" true
    (check_static_bounds_dynamic (compile src))

let test_pdg_bounds_dynamic_generated () =
  (* sweep a few generated programs; count how many were fully resolved
     so the property cannot silently become vacuous across all seeds *)
  let checked = ref 0 in
  for seed = 1 to 8 do
    let src = Dr_lang.Gen.program seed in
    let prog =
      match
        Dr_lang.Codegen.compile_result ~name:(Printf.sprintf "gen%d" seed) src
      with
      | Ok p -> p
      | Error e -> Alcotest.failf "seed %d does not compile: %s" seed e
    in
    if check_static_bounds_dynamic prog then incr checked
  done;
  Alcotest.(check bool)
    (Printf.sprintf "at least one generated program checked (%d/8)" !checked)
    true (!checked > 0)

(* ---- lint passes ---- *)

let test_lint_unreachable_block () =
  let prog =
    raw
      [| Instr.Mov (Reg.r0, Instr.Imm 1); Instr.Jmp 4;
         Instr.Mov (Reg.r0, Instr.Imm 2); Instr.Jmp 4; Instr.Sys Instr.Exit |]
  in
  match (Lint.run prog).Lint.unreachable with
  | [ u ] ->
    Alcotest.(check int) "dead block start" 2 u.Lint.ub_start;
    Alcotest.(check int) "dead block end" 4 u.Lint.ub_end
  | l -> Alcotest.failf "expected one unreachable block, got %d" (List.length l)

let test_lint_missing_restore () =
  let prog =
    raw [| Instr.Push Reg.r6; Instr.Mov (Reg.r0, Instr.Imm 1); Instr.Ret |]
  in
  match (Lint.run prog).Lint.save_restore with
  | [ s ] ->
    Alcotest.(check string) "kind" "missing-restore" (Lint.sr_kind_name s.Lint.sr_kind);
    Alcotest.(check int) "save pc" 0 s.Lint.sr_pc;
    Alcotest.(check int) "reg" Reg.r6 s.Lint.sr_reg
  | l -> Alcotest.failf "expected one save/restore issue, got %d" (List.length l)

let test_lint_order_mismatch () =
  let prog =
    raw
      [| Instr.Push Reg.r6; Instr.Push 7; Instr.Mov (Reg.r0, Instr.Imm 1);
         Instr.Pop Reg.r6; Instr.Pop 7; Instr.Ret |]
  in
  match (Lint.run prog).Lint.save_restore with
  | [ s ] ->
    Alcotest.(check string) "kind" "order-mismatch" (Lint.sr_kind_name s.Lint.sr_kind);
    Alcotest.(check int) "flagged at the ret" 5 s.Lint.sr_pc
  | l -> Alcotest.failf "expected one save/restore issue, got %d" (List.length l)

let calls_src =
  {|fn add3(int a, int b, int c) {
  int s = a + b;
  return s + c;
}
fn main() {
  int x = add3(1, 2, 3);
  int y = add3(x, x, x);
  print(x + y);
}|}

let test_lint_candidate_crosscheck () =
  (* the ordered lint scan and Prune.static_candidates implement the
     same idiom; on a compiled program they must agree exactly *)
  let prog = compile calls_src in
  let cfg = Dr_cfg.Cfg.build prog in
  let cands =
    Dr_slicing.Prune.static_candidates prog
      ~functions:(Dr_cfg.Cfg.functions cfg)
  in
  let to_assoc h = Hashtbl.fold (fun pc r acc -> (pc, r) :: acc) h [] in
  let candidates =
    (to_assoc cands.Dr_slicing.Prune.saves, to_assoc cands.Dr_slicing.Prune.restores)
  in
  let lint = Lint.run ~candidates prog in
  let mismatches =
    List.filter
      (fun s -> s.Lint.sr_kind = Lint.Candidate_mismatch)
      lint.Lint.save_restore
  in
  Alcotest.(check int) "no candidate mismatch" 0 (List.length mismatches);
  (* a bogus extra candidate must surface as a mismatch *)
  let saves, restores = candidates in
  let bogus = Lint.run ~candidates:((999, Reg.r6) :: saves, restores) prog in
  Alcotest.(check bool) "planted mismatch detected" true
    (List.exists
       (fun s -> s.Lint.sr_kind = Lint.Candidate_mismatch && s.Lint.sr_pc = 999)
       bogus.Lint.save_restore)

let switch_src =
  {|fn pick(int x) {
  int r = 0;
  switch (x) {
    case 0: r = 10; break;
    case 1: r = 20; break;
    case 2: r = 30; break;
    default: r = 90; break;
  }
  return r;
}
fn main() {
  print(pick(2));
}|}

let test_lint_indirect_audit () =
  let prog = compile switch_src in
  let lint = Lint.run prog in
  let jinds =
    List.filter (fun i -> i.Lint.ind_kind = `Jind) lint.Lint.indirect
  in
  match jinds with
  | [ i ] ->
    Alcotest.(check bool) "suggestions nonempty" true (i.Lint.ind_suggestions <> []);
    (match Dr_cfg.Cfg.func_at (Dr_cfg.Cfg.build prog) i.Lint.ind_pc with
    | None -> Alcotest.fail "jind outside any function"
    | Some f ->
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "suggestion %d inside the function" t)
            true
            (t >= f.Dr_cfg.Cfg.fentry && t < f.Dr_cfg.Cfg.fend))
        i.Lint.ind_suggestions)
  | l -> Alcotest.failf "expected one jind finding, got %d" (List.length l)

(* ---- report round-trip ---- *)

let replace_field k v = function
  | Json.Obj fields ->
    Json.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
  | j -> j

let drop_field k = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k', _) -> k' <> k) fields)
  | j -> j

let test_report_roundtrip () =
  let prog = compile switch_src in
  let _, doc = Report.analyze prog in
  (match Report.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report fails validation: %s" e);
  let expect_error what doc =
    match Report.validate doc with
    | Ok () -> Alcotest.failf "%s passed validation" what
    | Error _ -> ()
  in
  expect_error "wrong schema" (replace_field "schema" (Json.Str "bogus-v0") doc);
  expect_error "missing findings_total" (drop_field "findings_total" doc);
  expect_error "missing callgraph" (drop_field "callgraph" doc);
  let break_count doc =
    match Json.member "passes" doc with
    | Some passes ->
      let broken =
        replace_field "indirect-audit"
          (replace_field "count" (Json.int 99)
             (Option.get (Json.member "indirect-audit" passes)))
          passes
      in
      replace_field "passes" broken doc
    | None -> Alcotest.fail "report has no passes"
  in
  expect_error "count / findings mismatch" (break_count doc)

let () =
  Alcotest.run "static"
    [
      ( "dataflow",
        [
          Alcotest.test_case "forward diamond" `Quick test_dataflow_forward_diamond;
          Alcotest.test_case "backward line" `Quick test_dataflow_backward_line;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "maybe-uninit flagged" `Quick test_maybe_uninit_flagged;
          Alcotest.test_case "maybe-uninit clean" `Quick test_maybe_uninit_clean;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "direct + spawn" `Quick test_callgraph_direct_and_spawn;
          Alcotest.test_case "unreachable function" `Quick
            test_callgraph_unreachable_function;
          Alcotest.test_case "callind resolution" `Quick
            test_callgraph_callind_resolution;
        ] );
      ( "pdg",
        [
          Alcotest.test_case "resolution flag" `Quick test_pdg_resolution_flag;
          Alcotest.test_case "straightline slice" `Quick test_pdg_straightline_slice;
          Alcotest.test_case "static bounds dynamic (switch)" `Quick
            test_pdg_bounds_dynamic_switch;
          Alcotest.test_case "static bounds dynamic (generated)" `Slow
            test_pdg_bounds_dynamic_generated;
        ] );
      ( "lint",
        [
          Alcotest.test_case "unreachable block" `Quick test_lint_unreachable_block;
          Alcotest.test_case "missing restore" `Quick test_lint_missing_restore;
          Alcotest.test_case "order mismatch" `Quick test_lint_order_mismatch;
          Alcotest.test_case "candidate cross-check" `Quick
            test_lint_candidate_crosscheck;
          Alcotest.test_case "indirect audit" `Quick test_lint_indirect_audit;
        ] );
      ( "report",
        [ Alcotest.test_case "round-trip" `Quick test_report_roundtrip ];
      );
    ]
