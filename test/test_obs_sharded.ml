(* Tests for the per-domain sharded span recorder: pool tasks recording
   on several domains with correct nesting, the deterministic
   (stream, local order) merge across domain counts and consecutive
   runs, the orphan stream for un-pooled worker spans, and the
   disabled-mode guarantee that worker-domain span calls record nothing
   and allocate nothing. *)

module Obs = Dr_obs.Obs
module Slicer = Dr_slicing.Slicer
module Pool = Dr_util.Pool

let fresh ?(enabled = true) () =
  Obs.reset ();
  Obs.set_enabled enabled

(* ---- pool tasks record on their claiming domain ---- *)

(* Tasks that refuse to finish until [n] distinct claims are in flight:
   with a pool of [n] and [n] tasks, every worker must claim exactly one,
   so spans land on [n] distinct recording slots whatever the machine's
   scheduler would otherwise do. *)
let barrier_tasks n =
  let arrived = Atomic.make 0 in
  Array.init n (fun i ->
      fun () ->
        Obs.with_span ~cat:"test" "task.body" (fun sp ->
            Obs.add_attr sp "i" (Obs.Int i);
            Atomic.incr arrived;
            while Atomic.get arrived < n do
              Domain.cpu_relax ()
            done))

let test_pool_spans_multi_domain () =
  fresh ();
  Pool.with_pool ~domains:2 (fun pool -> Pool.run pool (barrier_tasks 2));
  Obs.set_enabled false;
  let spans = Obs.spans () in
  let by_name n =
    Array.to_list spans |> List.filter (fun s -> s.Obs.sp_name = n)
  in
  let claims = by_name "pool.claim"
  and execs = by_name "pool.exec"
  and bodies = by_name "task.body" in
  Alcotest.(check int) "two claims" 2 (List.length claims);
  Alcotest.(check int) "two execs" 2 (List.length execs);
  Alcotest.(check int) "two bodies" 2 (List.length bodies);
  Alcotest.(check int) "no mismatches" 0 (Obs.mismatch_count ());
  (* the barrier forced both workers to record *)
  let doms =
    List.sort_uniq Int.compare (List.map (fun s -> s.Obs.sp_dom) claims)
  in
  Alcotest.(check int) "claims on two distinct domains" 2 (List.length doms);
  (* nesting relative to the task's stream: claim at 0, exec at 1, the
     user span at 2 — identical whichever domain claimed the task *)
  List.iter
    (fun (s : Obs.span) -> Alcotest.(check int) "claim depth" 0 s.Obs.sp_depth)
    claims;
  List.iter
    (fun (s : Obs.span) -> Alcotest.(check int) "exec depth" 1 s.Obs.sp_depth)
    execs;
  List.iter
    (fun (s : Obs.span) -> Alcotest.(check int) "body depth" 2 s.Obs.sp_depth)
    bodies;
  (* the merge key is the logical stream: task i's spans carry stream
     base + i, so the body spans come back in task order even though
     the two domains raced *)
  let body_order =
    List.map
      (fun (s : Obs.span) ->
        match List.assoc_opt "i" s.Obs.sp_attrs with
        | Some (Obs.Int i) -> i
        | _ -> Alcotest.fail "task.body lost its index attr")
      bodies
  in
  Alcotest.(check (list int)) "bodies merged in task order" [ 0; 1 ]
    body_order;
  let streams = List.map (fun (s : Obs.span) -> s.Obs.sp_stream) bodies in
  Alcotest.(check bool) "streams distinct and ordered" true
    (match streams with [ a; b ] -> a < b | _ -> false)

(* ---- worker-domain spans outside any pool task: the orphan stream ---- *)

let test_unpooled_worker_span_is_orphan () =
  fresh ();
  Obs.with_span ~cat:"test" "main.before" (fun _ -> ());
  let d =
    Domain.spawn (fun () -> Obs.with_span ~cat:"test" "stray" (fun _ -> ()))
  in
  Domain.join d;
  Obs.with_span ~cat:"test" "main.after" (fun _ -> ());
  Obs.set_enabled false;
  let names = Array.to_list (Obs.spans ()) |> List.map (fun s -> s.Obs.sp_name) in
  (* the stray span is kept but sorts after every deterministic stream *)
  Alcotest.(check (list string)) "orphans sort last"
    [ "main.before"; "main.after"; "stray" ] names

(* ---- deterministic merge across domain counts and runs ---- *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let par_src = {|global int x;
global int y;
fn t1(int n) {
  y = 10;
  x = y + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    sum = sum + 2;
  }
  sum = sum + x;
  join(t);
  assert(sum > 0, "sum");
}|}

let criteria_of gt ~n =
  let len = Dr_slicing.Global_trace.length gt in
  let step = max 1 (len / n) in
  List.init n (fun i ->
      { Slicer.crit_pos = len - 1 - (i * step); crit_locs = None })

(* trace + criteria + an LP prepared once with NO pool: preparation
   sharding varies with the pool size by design (chunk count = domain
   count), so the schedule-independence contract is over the slicing
   fan-out itself *)
let fixture =
  lazy
    (let prog = compile par_src in
     let pb =
       match
         Dr_pinplay.Logger.log
           ~policy:(Dr_machine.Driver.Seeded { seed = 3; max_quantum = 4 })
           ~input:[||] prog Dr_pinplay.Logger.Whole
       with
       | Ok (pb, _) -> pb
       | Error e ->
         Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e
     in
     let c = Dr_slicing.Collector.collect ~refine:true prog pb in
     let gt = Dr_slicing.Global_trace.construct c in
     let lp = Dr_slicing.Lp.prepare gt in
     (gt, lp, criteria_of gt ~n:4))

(* names + depths + relative stream ranks, timestamps and physical
   domains excluded — the sequence the determinism contract promises *)
let merged_shape () =
  let spans = Obs.spans () in
  let streams =
    Array.to_list spans
    |> List.map (fun s -> s.Obs.sp_stream)
    |> List.sort_uniq Int.compare
  in
  let rank st =
    let rec go i = function
      | [] -> -1
      | s :: rest -> if s = st then i else go (i + 1) rest
    in
    go 0 streams
  in
  Array.to_list spans
  |> List.map (fun s ->
         (s.Obs.sp_name, s.Obs.sp_depth, rank s.Obs.sp_stream))

let traced_compute_many ~domains () =
  let gt, lp, crits = Lazy.force fixture in
  fresh ();
  Pool.with_pool ~domains (fun pool ->
      ignore (Slicer.compute_many ~lp ~pool gt crits : Slicer.t list));
  Obs.set_enabled false;
  merged_shape ()

let prop_merge_independent_of_domains =
  QCheck.Test.make
    ~name:"traced compute_many: 1/2/4 domains export one merged sequence"
    ~count:6
    QCheck.(int_bound 1000)
    (fun _ ->
      let one = traced_compute_many ~domains:1 () in
      one <> []
      && List.for_all
           (fun domains -> traced_compute_many ~domains () = one)
           [ 2; 4 ])

let test_consecutive_runs_identical () =
  let a = traced_compute_many ~domains:4 () in
  let b = traced_compute_many ~domains:4 () in
  Alcotest.(check bool) "some spans recorded" true (a <> []);
  Alcotest.(check bool) "consecutive traced runs identical" true (a = b)

(* ---- disabled mode on worker domains ---- *)

let test_disabled_worker_records_nothing () =
  fresh ~enabled:false ();
  let baseline = Obs.span_count () in
  Pool.with_pool ~domains:2 (fun pool ->
      Pool.run pool
        (Array.init 4 (fun i ->
             fun () ->
               let tok = Obs.start "ghost" in
               Obs.add_attr tok "i" (Obs.Int i);
               Obs.stop tok;
               Obs.with_span "ghost2" (fun _ -> ()))));
  Alcotest.(check int) "nothing recorded" baseline (Obs.span_count ());
  Alcotest.(check int) "no mismatches" 0 (Obs.mismatch_count ())

(* With the gate off a span call site must not allocate: compare the
   minor-allocation delta of an empty loop against an Obs-call loop,
   measured identically (both in this domain, both with the closure and
   the attr value hoisted so only the calls themselves differ). *)
let test_disabled_no_alloc () =
  fresh ~enabled:false ();
  let iters = 10_000 in
  let attr = Obs.Int 1 in
  let payload _sp = () in
  let measure f =
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    Gc.minor_words () -. w0
  in
  let empty = measure (fun () -> ()) in
  let obs =
    measure (fun () ->
        let tok = Obs.start "ghost" in
        Obs.add_attr tok "k" attr;
        Obs.stop tok;
        Obs.with_span "ghost2" payload)
  in
  (* identical loops, so any systematic difference is per-call
     allocation in the disabled path; allow a small constant of noise *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocation-free (empty %.0f, obs %.0f)"
       empty obs)
    true
    (obs -. empty < 100.0)

let () =
  let finally () = Obs.set_enabled false in
  Fun.protect ~finally (fun () ->
      Alcotest.run "obs-sharded"
        [ ( "pool recording",
            [ Alcotest.test_case "spans on two domains, correct nesting"
                `Quick test_pool_spans_multi_domain;
              Alcotest.test_case "un-pooled worker span lands on orphan"
                `Quick test_unpooled_worker_span_is_orphan ] );
          ( "deterministic merge",
            [ QCheck_alcotest.to_alcotest prop_merge_independent_of_domains;
              Alcotest.test_case "consecutive traced runs identical" `Quick
                test_consecutive_runs_identical ] );
          ( "disabled mode",
            [ Alcotest.test_case "worker span calls record nothing" `Quick
                test_disabled_worker_records_nothing;
              Alcotest.test_case "disabled path allocates nothing" `Quick
                test_disabled_no_alloc ] ) ])
