(* Tests for dr_machine: stepping semantics, syscalls, blocking,
   schedules, determinism, snapshots, def/use resolution. *)

open Dr_isa.Instr

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let run_rr ?input ?(quantum = 3) ?(max_steps = 1_000_000) prog =
  let m = Dr_machine.Machine.create ?input prog in
  let r = Dr_machine.Driver.run ~max_steps m (Dr_machine.Driver.Round_robin { quantum }) in
  (m, r)

let exited = function
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> true
  | _ -> false

(* ---- raw ISA semantics ---- *)

let raw_prog ?(strings = [||]) instrs =
  Dr_isa.Program.make ~name:"raw" ~strings ~entry:0 instrs

let test_basic_alu () =
  let p =
    raw_prog
      [ Mov (0, Imm 6); Mov (1, Imm 7); Bin (Mul, 2, 0, Reg 1);
        Mov (1, Reg 2); Sys Print; Halt ]
  in
  let m, r = run_rr p in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "42" [ 42 ] (Dr_machine.Machine.output_list m)

let test_push_pop () =
  let p =
    raw_prog
      [ Mov (0, Imm 11); Push 0; Mov (0, Imm 22); Pop 1; Mov (1, Reg 1);
        Sys Print; Halt ]
  in
  let m, _ = run_rr p in
  Alcotest.(check (list int)) "popped" [ 11 ] (Dr_machine.Machine.output_list m)

let test_cmp_jcc () =
  let p =
    raw_prog
      [ Mov (0, Imm 5); Cmp (0, Imm 5); Jcc (Eq, 5); Mov (1, Imm 0);
        Jmp 6; Mov (1, Imm 1); Sys Print; Halt ]
  in
  let m, _ = run_rr p in
  Alcotest.(check (list int)) "taken" [ 1 ] (Dr_machine.Machine.output_list m)

let test_fault_oob_load () =
  let p = raw_prog [ Mov (1, Imm (-5)); Load (0, 1, 0); Halt ] in
  let _, r = run_rr p in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { pc = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected fault at pc 1"

let test_fault_div_zero () =
  let p = raw_prog [ Mov (0, Imm 1); Mov (1, Imm 0); Bin (Div, 2, 0, Reg 1); Halt ] in
  let _, r = run_rr p in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check string) "msg" "division by zero" msg
  | _ -> Alcotest.fail "expected fault"

let test_fault_bad_jump () =
  let p = raw_prog [ Mov (0, Imm 123456); Jind 0; Halt ] in
  let _, r = run_rr p in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check bool) "mentions jump" true
      (String.length msg > 0 && msg.[0] = 'b')
  | _ -> Alcotest.fail "expected fault"

let test_unlock_not_held () =
  let p = raw_prog [ Mov (1, Imm 100); Sys Unlock; Halt ] in
  let _, r = run_rr p in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check bool) "unlock fault" true
      (String.sub msg 0 6 = "unlock")
  | _ -> Alcotest.fail "expected fault"

(* ---- threads and blocking ---- *)

let test_lock_blocks () =
  (* two threads increment a counter 1000 times each under a lock *)
  let src =
    {|
global int counter;
global int m;
fn worker(int n) {
  for (int i = 0; i < 1000; i = i + 1) {
    lock(&m);
    counter = counter + 1;
    unlock(&m);
  }
}
fn main() {
  int t1 = spawn(worker, 0);
  int t2 = spawn(worker, 0);
  join(t1);
  join(t2);
  print(counter);
}
|}
  in
  let m, r = run_rr ~quantum:7 (compile src) in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "atomic increments" [ 2000 ]
    (Dr_machine.Machine.output_list m)

let test_join_blocks () =
  let src =
    {|
global int done_flag;
fn worker(int n) {
  for (int i = 0; i < 500; i = i + 1) { }
  done_flag = 1;
}
fn main() {
  int t = spawn(worker, 0);
  join(t);
  print(done_flag);
}
|}
  in
  let m, _ = run_rr ~quantum:2 (compile src) in
  Alcotest.(check (list int)) "join waited" [ 1 ] (Dr_machine.Machine.output_list m)

let test_deadlock_detected () =
  let src =
    {|
global int a;
global int b;
fn worker(int n) {
  lock(&b);
  for (int i = 0; i < 100; i = i + 1) { }
  lock(&a);
  unlock(&a);
  unlock(&b);
}
fn main() {
  lock(&a);
  int t = spawn(worker, 0);
  for (int i = 0; i < 100; i = i + 1) { }
  lock(&b);
  unlock(&b);
  unlock(&a);
  join(t);
}
|}
  in
  let _, r = run_rr ~quantum:5 (compile src) in
  match r with
  | Dr_machine.Driver.Deadlock -> ()
  | r ->
    Alcotest.failf "expected deadlock, got %a"
      (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r) ()

let test_max_threads_fault () =
  let src =
    {|
fn worker(int n) { while (1 == 1) { yield(); } }
fn main() {
  for (int i = 0; i < 64; i = i + 1) { spawn(worker, i); }
}
|}
  in
  let _, r = run_rr (compile src) in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check bool) "spawn fault" true (String.sub msg 0 5 = "spawn")
  | _ -> Alcotest.fail "expected spawn fault"

(* ---- schedule sensitivity: the racy program the paper motivates ---- *)

let racy_src =
  {|
global int x;
fn t2(int n) {
  int k = x;
  k = k + 1;
  x = k;
}
fn main() {
  int t = spawn(t2, 0);
  int k = x;
  k = k + 1;
  x = k;
  join(t);
  print(x);
}
|}

let test_race_schedule_dependent () =
  (* with different seeded schedules, the lost-update race gives different
     results across seeds (we only check both outcomes are possible) *)
  let outcomes = Hashtbl.create 4 in
  for seed = 0 to 63 do
    let m = Dr_machine.Machine.create (compile racy_src) in
    let r =
      Dr_machine.Driver.run ~max_steps:100_000 m
        (Dr_machine.Driver.Seeded { seed; max_quantum = 5 })
    in
    if exited r then
      Hashtbl.replace outcomes (Dr_machine.Machine.output_list m) ()
  done;
  Alcotest.(check bool) "both interleavings observed" true
    (Hashtbl.mem outcomes [ 2 ] && Hashtbl.mem outcomes [ 1 ])

let prop_determinism =
  QCheck.Test.make ~name:"same seed => identical run" ~count:30
    QCheck.(int_bound 1000)
    (fun seed ->
      let run1 () =
        let m = Dr_machine.Machine.create (compile racy_src) in
        let r =
          Dr_machine.Driver.run ~max_steps:100_000 m
            (Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
        in
        (r, Dr_machine.Machine.output_list m, Dr_machine.Machine.total_icount m)
      in
      run1 () = run1 ())

(* ---- scripted schedules ---- *)

let test_scripted_schedule () =
  (* interleave two threads writing to a global array; the scripted order
     must produce exactly the scripted interleaving *)
  let src =
    {|
global int log[100];
global int pos;
fn worker(int id) {
  log[pos] = id;
  pos = pos + 1;
  log[pos] = id;
  pos = pos + 1;
}
fn main() {
  int t = spawn(worker, 2);
  join(t);
  print(log[0] + log[1] + log[2] + log[3]);
}
|}
  in
  let m, r = run_rr (compile src) in
  Alcotest.(check bool) "exited" true (exited r);
  ignore m

let test_scripted_divergence () =
  (* scheduling a tid that doesn't exist raises Replay_divergence *)
  let p = raw_prog [ Mov (0, Imm 1); Mov (0, Imm 2); Halt ] in
  let m = Dr_machine.Machine.create p in
  Alcotest.check_raises "divergence"
    (Dr_machine.Driver.Replay_divergence "schedule names bad tid 3") (fun () ->
      ignore
        (Dr_machine.Driver.run m (Dr_machine.Driver.Scripted [| (0, 1); (3, 1) |])))

let test_scripted_exact () =
  let p = raw_prog [ Mov (0, Imm 1); Mov (0, Imm 2); Mov (0, Imm 3); Halt ] in
  let m = Dr_machine.Machine.create p in
  let r = Dr_machine.Driver.run m (Dr_machine.Driver.Scripted [| (0, 2) |]) in
  (match r with
  | Dr_machine.Driver.Schedule_end -> ()
  | _ -> Alcotest.fail "expected schedule end");
  Alcotest.(check int) "2 steps retired" 2 (Dr_machine.Machine.total_icount m)

(* ---- snapshots ---- *)

let test_snapshot_roundtrip () =
  let prog = compile racy_src in
  let m = Dr_machine.Machine.create prog in
  (* run a bit, snapshot, continue; vs restore and continue: same result *)
  let _ =
    Dr_machine.Driver.run ~max_steps:20 m
      (Dr_machine.Driver.Round_robin { quantum = 3 })
  in
  let snap = Dr_machine.Snapshot.capture m in
  (* serialize/deserialize the snapshot *)
  let e = Dr_util.Codec.encoder () in
  Dr_machine.Snapshot.encode e snap;
  let snap' = Dr_machine.Snapshot.decode (Dr_util.Codec.decoder (Dr_util.Codec.to_string e)) in
  let m2 = Dr_machine.Snapshot.restore prog snap' in
  let finish mm =
    let r =
      Dr_machine.Driver.run ~max_steps:100_000 mm
        (Dr_machine.Driver.Round_robin { quantum = 3 })
    in
    (r, Dr_machine.Machine.output_list mm)
  in
  let r1 = finish m in
  let r2 = finish m2 in
  Alcotest.(check bool) "same continuation" true (r1 = r2)

let test_snapshot_preserves_locks () =
  let src =
    {|
global int m;
fn main() {
  lock(&m);
  yield();
  unlock(&m);
}
|}
  in
  let prog = compile src in
  let m = Dr_machine.Machine.create prog in
  (* step until the lock is held *)
  let stop =
    Dr_machine.Driver.run m
      ~stop_when:(fun ev ->
        match ev.Dr_machine.Event.sys with
        | Dr_machine.Event.Sys_lock { acquired = true; _ } -> true
        | _ -> false)
      (Dr_machine.Driver.Round_robin { quantum = 1 })
  in
  (match stop with
  | Dr_machine.Driver.Stop_requested -> ()
  | _ -> Alcotest.fail "lock not observed");
  let snap = Dr_machine.Snapshot.capture m in
  Alcotest.(check bool) "lock captured" true (snap.Dr_machine.Snapshot.locks <> []);
  let m2 = Dr_machine.Snapshot.restore prog snap in
  let r = Dr_machine.Driver.run m2 (Dr_machine.Driver.Round_robin { quantum = 1 }) in
  Alcotest.(check bool) "restored run finishes" true (exited r)

let test_snapshot_divergence_after_restore () =
  let prog = compile racy_src in
  let m = Dr_machine.Machine.create prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:20 m
      (Dr_machine.Driver.Round_robin { quantum = 3 })
  in
  let snap = Dr_machine.Snapshot.capture m in
  let m2 = Dr_machine.Snapshot.restore prog snap in
  (* the restored machine is fully independent: clobbering its memory
     must not leak into the original (capture/restore deep-copy) *)
  m2.Dr_machine.Machine.mem.(0) <- m2.Dr_machine.Machine.mem.(0) + 1;
  Alcotest.(check bool) "restore does not alias original memory" true
    (m.Dr_machine.Machine.mem.(0) <> m2.Dr_machine.Machine.mem.(0));
  (* and a restored machine detects replay divergence exactly like a
     fresh one: a schedule naming a bogus tid is a structured error *)
  let m3 = Dr_machine.Snapshot.restore prog snap in
  Alcotest.check_raises "divergence detected after restore"
    (Dr_machine.Driver.Replay_divergence "schedule names bad tid 7")
    (fun () ->
      ignore
        (Dr_machine.Driver.run m3 (Dr_machine.Driver.Scripted [| (7, 1) |])))

(* a multi-thread workload long enough that a mid-run snapshot lands
   while several threads are live and holding state *)
let snapshot_mt_src =
  {|
global int x;
global int m;
fn worker(int n) {
  for (int i = 0; i < 20; i = i + 1) {
    lock(&m);
    x = x + n;
    unlock(&m);
  }
}
fn main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  worker(3);
  join(a);
  join(b);
  print(x);
}
|}

let log_pinball ?(seed = 5) prog =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
      ~max_steps:200_000 prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> pb
  | Error e ->
    Alcotest.failf "log failed: %a" Dr_pinplay.Logger.pp_error e

(* replay [r] to the end, collecting the (step, tid, digest) of every
   retired instruction — the same per-step hash the pinball's recorded
   digests are spot checks of *)
let digests_from r =
  let acc = ref [] in
  let step = ref (Dr_pinplay.Replayer.steps r) in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev ->
          incr step;
          acc :=
            ( !step,
              ev.Dr_machine.Event.tid,
              Dr_pinplay.Exec_digest.hash
                (Dr_pinplay.Replayer.machine r)
                ev ~step:!step )
            :: !acc) }
  in
  ignore (Dr_pinplay.Replayer.resume ~hooks r);
  List.rev !acc

let test_snapshot_at_step_k_matches_straight_line () =
  (* replay K steps, checkpoint, resume from the checkpoint: every
     remaining step's digest must equal the straight-line replay's *)
  let prog = compile snapshot_mt_src in
  let pb = log_pinball prog in
  let full = digests_from (Dr_pinplay.Replayer.create prog pb) in
  let total = List.length full in
  Alcotest.(check bool) "run long enough to cut" true (total > 50);
  List.iter
    (fun k ->
      let r = Dr_pinplay.Replayer.create prog pb in
      ignore (Dr_pinplay.Replayer.resume ~max_steps:k r);
      let ck = Dr_pinplay.Replayer.checkpoint r in
      let r2 = Dr_pinplay.Replayer.create ~from:ck prog pb in
      let suffix = digests_from r2 in
      let expect = List.filteri (fun i _ -> i >= k) full in
      Alcotest.(check bool)
        (Printf.sprintf "digest suffix from step %d" k)
        true (suffix = expect))
    [ 1; 17; total / 2; total - 1 ]

let test_snapshot_multithread_schedule () =
  let prog = compile snapshot_mt_src in
  let pb = log_pinball ~seed:9 prog in
  let m_full, _ = Dr_pinplay.Replayer.replay prog pb in
  let full = digests_from (Dr_pinplay.Replayer.create prog pb) in
  let k = 40 in
  let r = Dr_pinplay.Replayer.create prog pb in
  ignore (Dr_pinplay.Replayer.resume ~max_steps:k r);
  Alcotest.(check bool) "several threads live at the cut" true
    (Dr_machine.Machine.num_threads (Dr_pinplay.Replayer.machine r) > 1);
  let ck = Dr_pinplay.Replayer.checkpoint r in
  Alcotest.(check bool) "snapshot carries every thread" true
    (List.length ck.Dr_pinplay.Replayer.c_snapshot.Dr_machine.Snapshot.threads
    > 1);
  let r2 = Dr_pinplay.Replayer.create ~from:ck prog pb in
  let suffix = digests_from r2 in
  Alcotest.(check bool) "mid-schedule resume matches straight-line" true
    (suffix = List.filteri (fun i _ -> i >= k) full);
  Alcotest.(check (list int))
    "resumed run reproduces the output"
    (Dr_machine.Machine.output_list m_full)
    (Dr_machine.Machine.output_list (Dr_pinplay.Replayer.machine r2))

let test_snapshot_under_budget_pressure () =
  let prog = compile racy_src in
  let m = Dr_machine.Machine.create prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:20 m
      (Dr_machine.Driver.Round_robin { quantum = 3 })
  in
  let snap = Dr_machine.Snapshot.capture m in
  let e = Dr_util.Codec.encoder () in
  Dr_machine.Snapshot.encode e snap;
  let encoded = Dr_util.Codec.to_string e in
  let bytes = String.length encoded in
  (* a hard cap below the snapshot size must surface as a structured
     Budget_exceeded, never a silent partial snapshot *)
  let tight = Dr_util.Budget.create ~mem_bytes:(bytes - 1) () in
  Dr_util.Budget.charge tight bytes;
  (match Dr_util.Budget.check_mem tight ~what:"snapshot" with
  | () -> Alcotest.fail "over-budget snapshot charge went unnoticed"
  | exception
      Dr_util.Budget.Resource_error
        (Dr_util.Budget.Budget_exceeded { re_what; _ }) ->
    Alcotest.(check string) "names the phase" "snapshot" re_what);
  (* under a budget with headroom the full capture/restore path is
     unaffected by the accounting *)
  let roomy = Dr_util.Budget.create ~mem_bytes:(2 * bytes) () in
  Dr_util.Budget.charge roomy bytes;
  Dr_util.Budget.check_mem roomy ~what:"snapshot";
  let snap' =
    Dr_machine.Snapshot.decode (Dr_util.Codec.decoder encoded)
  in
  let m2 = Dr_machine.Snapshot.restore prog snap' in
  let finish mm =
    let r =
      Dr_machine.Driver.run ~max_steps:100_000 mm
        (Dr_machine.Driver.Round_robin { quantum = 3 })
    in
    (r, Dr_machine.Machine.output_list mm)
  in
  Alcotest.(check bool) "same continuation under budget" true
    (finish m = finish m2)

(* ---- def/use resolution ---- *)

let collect_def_use prog ~at_pc =
  let m = Dr_machine.Machine.create prog in
  let result = ref None in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev ->
          if ev.Dr_machine.Event.pc = at_pc && !result = None then begin
            let defs = Dr_util.Vec.Int_vec.create () in
            let uses = Dr_util.Vec.Int_vec.create () in
            Dr_machine.Def_use.collect ev ~defs ~uses;
            result :=
              Some
                ( Dr_util.Vec.Int_vec.to_list defs,
                  Dr_util.Vec.Int_vec.to_list uses )
          end) }
  in
  ignore
    (Dr_machine.Driver.run ~hooks ~max_steps:10_000 m
       (Dr_machine.Driver.Round_robin { quantum = 1 }));
  !result

let test_def_use_load () =
  let p =
    raw_prog [ Mov (1, Imm 8); Store (1, 0, 0); Load (2, 1, 0); Halt ]
  in
  match collect_def_use p ~at_pc:2 with
  | Some (defs, uses) ->
    Alcotest.(check (list string)) "defs"
      [ "t0:r2" ]
      (List.map Dr_isa.Loc.to_string defs);
    Alcotest.(check (list string)) "uses"
      [ "t0:r1"; "mem[8]" ]
      (List.map Dr_isa.Loc.to_string uses)
  | None -> Alcotest.fail "no event at pc 2"

let test_def_use_push () =
  let p = raw_prog [ Mov (1, Imm 5); Push 1; Halt ] in
  match collect_def_use p ~at_pc:1 with
  | Some (defs, uses) ->
    let strs = List.map Dr_isa.Loc.to_string in
    (* sp/fp are excluded from dependence tracking; the memory write and
       the source register remain *)
    Alcotest.(check bool) "no sp def" false (List.mem "t0:sp" (strs defs));
    Alcotest.(check bool) "defs mem" true
      (List.exists Dr_isa.Loc.is_mem defs);
    Alcotest.(check bool) "uses r1" true (List.mem "t0:r1" (strs uses))
  | None -> Alcotest.fail "no event"

let test_def_use_cmp_flags () =
  let p = raw_prog [ Mov (1, Imm 5); Cmp (1, Imm 3); Jcc (Gt, 3); Halt ] in
  (match collect_def_use p ~at_pc:1 with
  | Some (defs, _) ->
    Alcotest.(check (list string)) "cmp defs flags" [ "t0:flags" ]
      (List.map Dr_isa.Loc.to_string defs)
  | None -> Alcotest.fail "no cmp event");
  match collect_def_use p ~at_pc:2 with
  | Some (_, uses) ->
    Alcotest.(check (list string)) "jcc uses flags" [ "t0:flags" ]
      (List.map Dr_isa.Loc.to_string uses)
  | None -> Alcotest.fail "no jcc event"

(* ---- additional ISA semantics coverage ---- *)

let run_collect_r1 instrs =
  (* run and return the final r1 of thread 0 *)
  let p = raw_prog instrs in
  let m = Dr_machine.Machine.create p in
  let r = Dr_machine.Driver.run ~max_steps:10_000 m (Dr_machine.Driver.Round_robin { quantum = 1 }) in
  (match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> ()
  | _ -> Alcotest.fail "did not exit");
  (Dr_machine.Machine.thread m 0).Dr_machine.Machine.regs.(1)

let test_setcc_all_conditions () =
  let check cond a b expect =
    let v =
      run_collect_r1
        [ Mov (0, Imm a); Cmp (0, Imm b); Setcc (cond, 1); Halt ]
    in
    Alcotest.(check int)
      (Printf.sprintf "%s %d %d" (Dr_isa.Instr.cond_name cond) a b)
      expect v
  in
  check Eq 3 3 1; check Eq 3 4 0;
  check Ne 3 4 1; check Ne 3 3 0;
  check Lt 2 3 1; check Lt 3 3 0; check Lt 4 3 0;
  check Le 3 3 1; check Le 2 3 1; check Le 4 3 0;
  check Gt 4 3 1; check Gt 3 3 0;
  check Ge 3 3 1; check Ge 2 3 0

let test_binops_semantics () =
  let check op a b expect =
    let v = run_collect_r1 [ Mov (0, Imm a); Bin (op, 1, 0, Imm b); Halt ] in
    Alcotest.(check int) (Dr_isa.Instr.binop_name op) expect v
  in
  check Add 7 5 12;
  check Sub 7 5 2;
  check Mul 7 5 35;
  check Div 17 5 3;
  check Div (-17) 5 (-3);
  check Mod 17 5 2;
  check Mod (-17) 5 (-2);
  check And 12 10 8;
  check Or 12 10 14;
  check Xor 12 10 6;
  check Shl 3 4 48;
  check Shr 48 4 3;
  check Shr (-16) 2 (-4)

let test_callind () =
  (* call through a register *)
  let p =
    raw_prog
      [ Mov (2, Imm 5); Callind 2; Mov (1, Reg 0); Sys Print; Halt;
        (* callee at 5 *) Mov (0, Imm 99); Ret ]
  in
  let m, r = run_rr p in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "returned through register" [ 99 ]
    (Dr_machine.Machine.output_list m)

let test_assert_pass_continues () =
  let p =
    raw_prog ~strings:[| "never" |]
      [ Mov (0, Imm 1); Assert (0, 0); Mov (1, Imm 7); Sys Print; Halt ]
  in
  let m, r = run_rr p in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "continued past assert" [ 7 ]
    (Dr_machine.Machine.output_list m)

let test_spawn_passes_argument () =
  let src = {|global int got;
fn child(int arg) { got = arg * 2; }
fn main() {
  int t = spawn(child, 21);
  join(t);
  print(got);
}|} in
  let m, r = run_rr (compile src) in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "arg delivered" [ 42 ]
    (Dr_machine.Machine.output_list m)

let test_alloc_oom_fault () =
  let src = {|fn main() {
  while (1 == 1) {
    int p = alloc(10000);
  }
}|} in
  let _, r = run_rr ~max_steps:10_000_000 (compile src) in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check string) "oom" "alloc: out of memory" msg
  | _ -> Alcotest.fail "expected oom fault"

let test_join_self_is_deadlock () =
  (* joining a never-finishing thread while holding nothing: main joining
     a spinning thread is NOT deadlock (spinner is runnable); but joining
     tid 0 from tid 0 blocks forever -> deadlock *)
  let p = raw_prog [ Mov (1, Imm 0); Sys Join; Halt ] in
  let m = Dr_machine.Machine.create p in
  let r = Dr_machine.Driver.run m (Dr_machine.Driver.Round_robin { quantum = 1 }) in
  ignore m;
  match r with
  | Dr_machine.Driver.Deadlock -> ()
  | _ ->
    Alcotest.failf "expected deadlock, got %a"
      (fun fmt () -> Dr_machine.Driver.pp_stop_reason fmt r)
      ()

let test_time_syscall_is_logged_nondet () =
  (* time returns the nondet callback's value *)
  let p = raw_prog [ Sys Time; Mov (1, Reg 0); Sys Print; Halt ] in
  let m = Dr_machine.Machine.create p in
  let nondet = function Dr_machine.Event.Time -> 1234 | _ -> 0 in
  let r = Dr_machine.Driver.run ~nondet m (Dr_machine.Driver.Round_robin { quantum = 1 }) in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "time value" [ 1234 ] (Dr_machine.Machine.output_list m)

let test_read_exhausted_returns_minus_one () =
  let p = raw_prog [ Sys Read; Mov (1, Reg 0); Sys Print; Halt ] in
  let m, _ = run_rr ~input:[||] p in
  Alcotest.(check (list int)) "eof" [ -1 ] (Dr_machine.Machine.output_list m)

let test_round_robin_fairness () =
  (* under round-robin, two identical spinning threads retire similar
     instruction counts *)
  let src = {|global int a;
global int b;
fn w1(int n) { for (int i = 0; i < 3000; i = i + 1) { a = a + 1; } }
fn main() {
  int t = spawn(w1, 0);
  for (int i = 0; i < 3000; i = i + 1) { b = b + 1; }
  join(t);
}|} in
  let prog = compile src in
  let m = Dr_machine.Machine.create prog in
  let _ =
    Dr_machine.Driver.run ~max_steps:1_000_000 m
      (Dr_machine.Driver.Round_robin { quantum = 10 })
  in
  let i0 = (Dr_machine.Machine.thread m 0).Dr_machine.Machine.icount in
  let i1 = (Dr_machine.Machine.thread m 1).Dr_machine.Machine.icount in
  Alcotest.(check bool)
    (Printf.sprintf "fair split (%d vs %d)" i0 i1)
    true
    (abs (i0 - i1) < (i0 + i1) / 2)

let prop_seeded_policies_terminate =
  QCheck.Test.make ~name:"seeded schedules never wedge runnable programs"
    ~count:40
    QCheck.(pair (int_bound 1000) (int_range 1 10))
    (fun (seed, q) ->
      let prog = compile {|global int x;
fn w(int n) { for (int i = 0; i < 50; i = i + 1) { x = x + 1; } }
fn main() {
  int a = spawn(w, 0);
  int b = spawn(w, 0);
  join(a);
  join(b);
  print(x);
}|} in
      let m = Dr_machine.Machine.create prog in
      match
        Dr_machine.Driver.run ~max_steps:200_000 m
          (Dr_machine.Driver.Seeded { seed; max_quantum = q })
      with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> true
      | _ -> false)

let test_snapshot_of_finished_threads () =
  let src = {|fn w(int n) { }
fn main() {
  int t = spawn(w, 0);
  join(t);
  print(1);
}|} in
  let prog = compile src in
  let m = Dr_machine.Machine.create prog in
  (* run until the worker finished *)
  let _ =
    Dr_machine.Driver.run m
      ~stop_when:(fun _ ->
        Dr_machine.Machine.num_threads m > 1
        && (Dr_machine.Machine.thread m 1).Dr_machine.Machine.state
           = Dr_machine.Machine.Finished)
      (Dr_machine.Driver.Round_robin { quantum = 2 })
  in
  let snap = Dr_machine.Snapshot.capture m in
  let m2 = Dr_machine.Snapshot.restore prog snap in
  Alcotest.(check bool) "finished state preserved" true
    ((Dr_machine.Machine.thread m2 1).Dr_machine.Machine.state
    = Dr_machine.Machine.Finished);
  let r = Dr_machine.Driver.run m2 (Dr_machine.Driver.Round_robin { quantum = 2 }) in
  Alcotest.(check bool) "restored run completes" true (exited r)

(* ---- condition variables ---- *)

let condvar_src = {|global int m;
global int cv;
global int queue[16];
global int qlen;
global int consumed;
fn consumer(int n) {
  for (int i = 0; i < n; i = i + 1) {
    lock(&m);
    while (qlen == 0) {
      wait(&cv, &m);
    }
    qlen = qlen - 1;
    consumed = consumed + queue[qlen];
    unlock(&m);
  }
}
fn main() {
  int t = spawn(consumer, 8);
  for (int i = 0; i < 8; i = i + 1) {
    lock(&m);
    queue[qlen] = i + 1;
    qlen = qlen + 1;
    signal(&cv);
    unlock(&m);
  }
  join(t);
  print(consumed);
}|}

let test_condvar_producer_consumer () =
  let m, r = run_rr ~quantum:3 (compile condvar_src) in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "all items consumed" [ 36 ]
    (Dr_machine.Machine.output_list m)

let prop_condvar_all_schedules =
  QCheck.Test.make ~name:"condvar protocol correct under any schedule"
    ~count:40
    QCheck.(pair (int_bound 500) (int_range 1 8))
    (fun (seed, q) ->
      let m = Dr_machine.Machine.create (compile condvar_src) in
      match
        Dr_machine.Driver.run ~max_steps:1_000_000 m
          (Dr_machine.Driver.Seeded { seed; max_quantum = q })
      with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) ->
        Dr_machine.Machine.output_list m = [ 36 ]
      | _ -> false)

let test_broadcast_wakes_all () =
  let src = {|global int m;
global int cv;
global int ready;
global int woken;
fn waiter(int n) {
  lock(&m);
  while (ready == 0) {
    wait(&cv, &m);
  }
  woken = woken + 1;
  unlock(&m);
}
fn main() {
  int a = spawn(waiter, 0);
  int b = spawn(waiter, 0);
  int c = spawn(waiter, 0);
  for (int i = 0; i < 50; i = i + 1) { yield(); }
  lock(&m);
  ready = 1;
  broadcast(&cv);
  unlock(&m);
  join(a);
  join(b);
  join(c);
  print(woken);
}|} in
  let m, r = run_rr ~quantum:3 (compile src) in
  Alcotest.(check bool) "exited" true (exited r);
  Alcotest.(check (list int)) "all three woken" [ 3 ]
    (Dr_machine.Machine.output_list m)

let test_wait_without_mutex_faults () =
  let src = {|global int m;
global int cv;
fn main() {
  wait(&cv, &m);
}|} in
  let _, r = run_rr (compile src) in
  match r with
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Fault { msg; _ }) ->
    Alcotest.(check string) "fault" "wait: mutex not held by this thread" msg
  | _ -> Alcotest.fail "expected fault"

let test_condvar_record_replay () =
  (* the condvar protocol is fully covered by schedule logging *)
  let prog = compile condvar_src in
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed = 17; max_quantum = 4 })
      prog Dr_pinplay.Logger.Whole
  with
  | Error _ -> Alcotest.fail "log failed"
  | Ok (pb, _) ->
    let m, _ = Dr_pinplay.Replayer.replay prog pb in
    Alcotest.(check (list int)) "replay reproduces" [ 36 ]
      (Dr_machine.Machine.output_list m)

let () =
  Alcotest.run "machine"
    [ ( "isa semantics",
        [ Alcotest.test_case "alu" `Quick test_basic_alu;
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "cmp/jcc" `Quick test_cmp_jcc;
          Alcotest.test_case "oob load faults" `Quick test_fault_oob_load;
          Alcotest.test_case "div by zero" `Quick test_fault_div_zero;
          Alcotest.test_case "bad jump" `Quick test_fault_bad_jump;
          Alcotest.test_case "unlock not held" `Quick test_unlock_not_held ] );
      ( "threads",
        [ Alcotest.test_case "lock blocks" `Quick test_lock_blocks;
          Alcotest.test_case "join blocks" `Quick test_join_blocks;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "thread limit" `Quick test_max_threads_fault ] );
      ( "schedules",
        [ Alcotest.test_case "race is schedule dependent" `Quick
            test_race_schedule_dependent;
          QCheck_alcotest.to_alcotest prop_determinism;
          Alcotest.test_case "scripted runs" `Quick test_scripted_schedule;
          Alcotest.test_case "scripted divergence" `Quick
            test_scripted_divergence;
          Alcotest.test_case "scripted exact count" `Quick test_scripted_exact ] );
      ( "snapshot",
        [ Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "divergence after restore" `Quick
            test_snapshot_divergence_after_restore;
          Alcotest.test_case "budget pressure" `Quick
            test_snapshot_under_budget_pressure;
          Alcotest.test_case "locks preserved" `Quick
            test_snapshot_preserves_locks;
          Alcotest.test_case "snapshot at step K = straight line" `Quick
            test_snapshot_at_step_k_matches_straight_line;
          Alcotest.test_case "snapshot under multi-thread schedule" `Quick
            test_snapshot_multithread_schedule ] );
      ( "def/use",
        [ Alcotest.test_case "load" `Quick test_def_use_load;
          Alcotest.test_case "push" `Quick test_def_use_push;
          Alcotest.test_case "cmp/flags" `Quick test_def_use_cmp_flags ] );
      ( "isa coverage",
        [ Alcotest.test_case "setcc conditions" `Quick test_setcc_all_conditions;
          Alcotest.test_case "binop semantics" `Quick test_binops_semantics;
          Alcotest.test_case "indirect call" `Quick test_callind;
          Alcotest.test_case "assert passes" `Quick test_assert_pass_continues;
          Alcotest.test_case "spawn argument" `Quick test_spawn_passes_argument;
          Alcotest.test_case "alloc oom" `Quick test_alloc_oom_fault;
          Alcotest.test_case "self join deadlock" `Quick test_join_self_is_deadlock;
          Alcotest.test_case "time nondet" `Quick test_time_syscall_is_logged_nondet;
          Alcotest.test_case "read eof" `Quick test_read_exhausted_returns_minus_one;
          Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
          QCheck_alcotest.to_alcotest prop_seeded_policies_terminate;
          Alcotest.test_case "snapshot finished threads" `Quick
            test_snapshot_of_finished_threads ] );
      ( "condition variables",
        [ Alcotest.test_case "producer/consumer" `Quick
            test_condvar_producer_consumer;
          QCheck_alcotest.to_alcotest prop_condvar_all_schedules;
          Alcotest.test_case "broadcast" `Quick test_broadcast_wakes_all;
          Alcotest.test_case "wait without mutex" `Quick
            test_wait_without_mutex_faults;
          Alcotest.test_case "record/replay" `Quick test_condvar_record_replay ] ) ]
