(* Conformance subsystem tests: corpus replay, the broken-slicer
   self-test (the soundness oracle must catch a slicer that drops a
   dependence), shrinking, and fuzz-case JSON round-trips. *)

let corpus_dir = "corpus"

(* ---- corpus replay: every stored minimal repro must stay fixed ---- *)

let test_corpus_replay () =
  let files =
    if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    else []
  in
  if files = [] then Alcotest.fail "no corpus cases found under test/corpus";
  List.iter
    (fun f ->
      let path = Filename.concat corpus_dir f in
      match Dr_conformance.Fuzz.load_corpus_case path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok c -> (
        match Dr_conformance.Fuzz.replay_corpus_case c with
        | Dr_conformance.Oracles.Pass -> ()
        | Dr_conformance.Oracles.Skip reason ->
          Alcotest.failf "%s: skipped (%s) — corpus cases must run" path reason
        | Dr_conformance.Oracles.Fail { f_kind; f_detail } ->
          Alcotest.failf "%s: regressed: %s: %s" path
            (Dr_conformance.Oracles.kind_name f_kind)
            f_detail))
    files

(* ---- broken slicer: drop a data dependence of the criterion ---- *)

(* The mutation a buggy slicer would produce: one record the criterion
   data-depends on is missing from the slice.  Slice replay with
   injections CANNOT catch this (the relogger faithfully injects the
   dropped record's side effects); the re-execution soundness oracle
   must. *)
let drop_crit_data_dep (s : Dr_slicing.Slicer.t) : Dr_slicing.Slicer.t =
  let crit = s.Dr_slicing.Slicer.criterion.Dr_slicing.Slicer.crit_pos in
  let victim =
    Array.fold_left
      (fun acc (e : Dr_slicing.Slicer.edge) ->
        match acc with
        | Some _ -> acc
        | None ->
          if e.Dr_slicing.Slicer.from_pos = crit then
            match e.Dr_slicing.Slicer.kind with
            | Dr_slicing.Slicer.Data _ | Dr_slicing.Slicer.Data_bypassed _ ->
              Some e.Dr_slicing.Slicer.to_pos
            | Dr_slicing.Slicer.Control -> None
          else None)
      None s.Dr_slicing.Slicer.edges
  in
  match victim with
  | None -> s
  | Some v ->
    { s with
      Dr_slicing.Slicer.positions =
        Array.of_list
          (List.filter (fun p -> p <> v)
             (Array.to_list s.Dr_slicing.Slicer.positions));
      adj = None }

let test_broken_slicer_caught () =
  let out_dir = "corpus-out" in
  let s =
    Dr_conformance.Fuzz.run ~mutate_slice:drop_crit_data_dep ~out_dir
      ~seed:42 ~runs:3 ()
  in
  let soundness =
    List.filter
      (fun (f : Dr_conformance.Fuzz.failure) ->
        f.Dr_conformance.Fuzz.fr_kind = Dr_conformance.Oracles.Slice_soundness)
      s.Dr_conformance.Fuzz.s_failures
  in
  if soundness = [] then
    Alcotest.fail
      "a slicer that drops a criterion data dependence was not caught by the \
       soundness oracle";
  (* the shrunk repro is small and was persisted *)
  let f = List.hd soundness in
  let lines = Array.length f.Dr_conformance.Fuzz.fr_lines in
  if lines > 15 then
    Alcotest.failf "shrunk repro has %d lines, expected <= 15:\n%s" lines
      (String.concat "\n" (Array.to_list f.Dr_conformance.Fuzz.fr_lines));
  let path =
    Filename.concat out_dir
      (Printf.sprintf "case-%d.json" f.Dr_conformance.Fuzz.fr_case_id)
  in
  Alcotest.(check bool) "shrunk case persisted" true (Sys.file_exists path);
  (* and the persisted artifact round-trips as a corpus case *)
  match Dr_conformance.Fuzz.load_corpus_case path with
  | Error e -> Alcotest.failf "persisted case unreadable: %s" e
  | Ok c -> (
    (* replaying it against the HONEST slicer passes: the pipeline is
       fine, only the mutated slicer was broken *)
    match Dr_conformance.Fuzz.replay_corpus_case c with
    | Dr_conformance.Oracles.Pass -> ()
    | Dr_conformance.Oracles.Skip r ->
      Alcotest.failf "persisted case skipped on honest replay: %s" r
    | Dr_conformance.Oracles.Fail { f_kind; f_detail } ->
      Alcotest.failf "honest slicer fails the persisted case: %s: %s"
        (Dr_conformance.Oracles.kind_name f_kind)
        f_detail)

(* ---- broken reexec driver: a disagreement only driver five shows ---- *)

(* The corruption a buggy re-execution backend would produce: re-derived
   records lose their definitions, so only the reexec slice drops every
   data dependence.  The other four drivers read the stored trace and
   stay correct — the five-way agreement oracle is the only one that can
   see it, and the shrinker must still converge re-running that same
   clobbered pipeline. *)
let clobber_rederived_defs (r : Dr_slicing.Trace.record) :
    Dr_slicing.Trace.record =
  if r.Dr_slicing.Trace.defs <> [||] then
    { r with Dr_slicing.Trace.defs = [||] }
  else r

let test_broken_reexec_shrinks () =
  let out_dir = "corpus-out-reexec" in
  let s =
    Dr_conformance.Fuzz.run ~reexec_clobber:clobber_rederived_defs ~out_dir
      ~seed:42 ~runs:3 ()
  in
  let disagreements =
    List.filter
      (fun (f : Dr_conformance.Fuzz.failure) ->
        f.Dr_conformance.Fuzz.fr_kind = Dr_conformance.Oracles.Driver_agreement)
      s.Dr_conformance.Fuzz.s_failures
  in
  if disagreements = [] then
    Alcotest.fail
      "a re-execution backend that loses definitions was not caught by the \
       driver-agreement oracle";
  (* the reexec-only disagreement still shrinks to a small repro *)
  let f = List.hd disagreements in
  let lines = Array.length f.Dr_conformance.Fuzz.fr_lines in
  if lines > 15 then
    Alcotest.failf "shrunk repro has %d lines, expected <= 15:\n%s" lines
      (String.concat "\n" (Array.to_list f.Dr_conformance.Fuzz.fr_lines));
  let path =
    Filename.concat out_dir
      (Printf.sprintf "case-%d.json" f.Dr_conformance.Fuzz.fr_case_id)
  in
  Alcotest.(check bool) "shrunk case persisted" true (Sys.file_exists path);
  match Dr_conformance.Fuzz.load_corpus_case path with
  | Error e -> Alcotest.failf "persisted case unreadable: %s" e
  | Ok c -> (
    (* with an HONEST re-execution backend the same case passes: the
       disagreement was the injected clobber, not the pipeline *)
    match Dr_conformance.Fuzz.replay_corpus_case c with
    | Dr_conformance.Oracles.Pass -> ()
    | Dr_conformance.Oracles.Skip r ->
      Alcotest.failf "persisted case skipped on honest replay: %s" r
    | Dr_conformance.Oracles.Fail { f_kind; f_detail } ->
      Alcotest.failf "honest reexec fails the persisted case: %s: %s"
        (Dr_conformance.Oracles.kind_name f_kind)
        f_detail)

(* ---- quick green run: a handful of cases, all five oracles ---- *)

let test_fuzz_quick_green () =
  let s = Dr_conformance.Fuzz.run ~seed:7 ~runs:5 () in
  Alcotest.(check int) "5 cases" 5 s.Dr_conformance.Fuzz.s_cases;
  (match s.Dr_conformance.Fuzz.s_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d failed %s: %s" f.Dr_conformance.Fuzz.fr_case_id
      (Dr_conformance.Oracles.kind_name f.Dr_conformance.Fuzz.fr_kind)
      f.Dr_conformance.Fuzz.fr_detail);
  Alcotest.(check int) "no skips" 0 s.Dr_conformance.Fuzz.s_skips

(* ---- schedule JSON round-trip ---- *)

let test_sched_json_roundtrip () =
  let sched = [| (0, 3); (2, 1); (1, 6); (0, 2) |] in
  match Dr_conformance.Sched.of_json (Dr_conformance.Sched.to_json sched) with
  | Ok s -> Alcotest.(check bool) "round-trip" true (s = sched)
  | Error e -> Alcotest.fail e

(* ---- case derivation is deterministic and seed-sensitive ---- *)

let test_case_derivation () =
  Alcotest.(check int) "prog_seed deterministic"
    (Dr_conformance.Fuzz.prog_seed ~master:42 7)
    (Dr_conformance.Fuzz.prog_seed ~master:42 7);
  Alcotest.(check bool) "cases differ" true
    (Dr_conformance.Fuzz.prog_seed ~master:42 7
    <> Dr_conformance.Fuzz.prog_seed ~master:42 8);
  Alcotest.(check bool) "masters differ" true
    (Dr_conformance.Fuzz.prog_seed ~master:42 7
    <> Dr_conformance.Fuzz.prog_seed ~master:43 7);
  (* derived seeds survive a JSON float round-trip *)
  let s = Dr_conformance.Fuzz.nondet_seed ~master:42 7 in
  Alcotest.(check int) "json-exact" s
    (int_of_float (float_of_int s))

let () =
  Alcotest.run "conformance"
    [ ( "corpus",
        [ Alcotest.test_case "replay stored repros" `Quick test_corpus_replay ]
      );
      ( "oracles",
        [ Alcotest.test_case "broken slicer caught" `Quick
            test_broken_slicer_caught;
          Alcotest.test_case "broken reexec caught and shrunk" `Quick
            test_broken_reexec_shrinks;
          Alcotest.test_case "quick fuzz green" `Quick test_fuzz_quick_green ]
      );
      ( "plumbing",
        [ Alcotest.test_case "schedule json round-trip" `Quick
            test_sched_json_roundtrip;
          Alcotest.test_case "case derivation" `Quick test_case_derivation ] )
    ]
