(* Differential property tests over randomly generated programs
   (lib/lang/gen.ml).  Each property exercises the whole pipeline:
   compile -> run -> record -> replay -> trace -> slice -> slice replay. *)

let compile_seed seed =
  let src = Dr_lang.Gen.program seed in
  match Dr_lang.Codegen.compile_result ~name:(Printf.sprintf "gen%d" seed) src with
  | Ok p -> p
  | Error e -> QCheck.Test.fail_reportf "seed %d does not compile: %s\n%s" seed e src

let run_seeded prog ~sched_seed =
  let m = Dr_machine.Machine.create prog in
  let r =
    Dr_machine.Driver.run ~max_steps:3_000_000 m
      (Dr_machine.Driver.Seeded { seed = sched_seed; max_quantum = 5 })
  in
  (m, r)

let clean_exit = function
  | Dr_machine.Driver.Terminated (Dr_machine.Machine.Exited _) -> true
  | _ -> false

(* 1. generated programs always compile and terminate cleanly *)
let prop_gen_safe =
  QCheck.Test.make ~name:"generated programs compile and run cleanly" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound 50))
    (fun (seed, sched_seed) ->
      let prog = compile_seed seed in
      let _, r = run_seeded prog ~sched_seed in
      if not (clean_exit r) then
        QCheck.Test.fail_reportf "seed %d sched %d: %s" seed sched_seed
          (Format.asprintf "%a" Dr_machine.Driver.pp_stop_reason r)
      else true)

(* 2. record/replay equivalence: replay reproduces output exactly *)
let prop_gen_replay =
  QCheck.Test.make ~name:"record/replay equivalence on generated programs"
    ~count:40
    QCheck.(pair (int_bound 100_000) (int_bound 50))
    (fun (seed, sched_seed) ->
      let prog = compile_seed seed in
      let m, _ = run_seeded prog ~sched_seed in
      let native_out = Dr_machine.Machine.output_list m in
      match
        Dr_pinplay.Logger.log
          ~policy:(Dr_machine.Driver.Seeded { seed = sched_seed; max_quantum = 5 })
          prog Dr_pinplay.Logger.Whole
      with
      | Error _ -> false
      | Ok (pb, _) ->
        let m2, _ = Dr_pinplay.Replayer.replay prog pb in
        Dr_machine.Machine.output_list m2 = native_out)

(* reference slicer: no LP, no pruning (same as test_slicing's naive) *)
let naive_slice gt crit_pos =
  let wanted = Hashtbl.create 64 in
  let to_include = Hashtbl.create 64 in
  let in_slice = Hashtbl.create 64 in
  let crit = Dr_slicing.Global_trace.record gt crit_pos in
  Hashtbl.replace in_slice crit_pos ();
  Array.iter (fun u -> Hashtbl.replace wanted u ()) crit.Dr_slicing.Trace.uses;
  if crit.Dr_slicing.Trace.cd >= 0 then
    Hashtbl.replace to_include
      (Dr_slicing.Global_trace.position gt ~gseq:crit.Dr_slicing.Trace.cd)
      ();
  for pos = crit_pos - 1 downto 0 do
    let r = Dr_slicing.Global_trace.record gt pos in
    let inc = ref (Hashtbl.mem to_include pos) in
    Array.iter
      (fun d ->
        if Hashtbl.mem wanted d then begin
          inc := true;
          Hashtbl.remove wanted d
        end)
      r.Dr_slicing.Trace.defs;
    if !inc && not (Hashtbl.mem in_slice pos) then begin
      Hashtbl.replace in_slice pos ();
      Array.iter (fun u -> Hashtbl.replace wanted u ()) r.Dr_slicing.Trace.uses;
      if r.Dr_slicing.Trace.cd >= 0 then
        Hashtbl.replace to_include
          (Dr_slicing.Global_trace.position gt ~gseq:r.Dr_slicing.Trace.cd)
          ()
    end
  done;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) in_slice [])

let pipeline seed sched_seed =
  let prog = compile_seed seed in
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed = sched_seed; max_quantum = 5 })
      prog Dr_pinplay.Logger.Whole
  with
  | Error _ -> None
  | Ok (pb, _) ->
    let c = Dr_slicing.Collector.collect prog pb in
    let gt = Dr_slicing.Global_trace.construct c in
    Some (prog, pb, c, gt)

(* 3. LP slicer == reference slicer on generated programs *)
let prop_gen_lp_equals_naive =
  QCheck.Test.make ~name:"LP slicer equals reference on generated programs"
    ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 20))
    (fun (seed, sched_seed) ->
      match pipeline seed sched_seed with
      | None -> false
      | Some (_, _, _, gt) ->
        let n = Dr_slicing.Global_trace.length gt in
        if n = 0 then true
        else begin
          let crit_pos = n - 1 in
          let lp = Dr_slicing.Lp.prepare ~block_size:64 gt in
          let slice =
            Dr_slicing.Slicer.compute ~lp gt
              { Dr_slicing.Slicer.crit_pos; crit_locs = None }
          in
          Array.to_list slice.Dr_slicing.Slicer.positions
          = naive_slice gt crit_pos
        end)

(* 4. global trace is topological on generated programs *)
let prop_gen_topological =
  QCheck.Test.make ~name:"global trace topological on generated programs"
    ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 20))
    (fun (seed, sched_seed) ->
      match pipeline seed sched_seed with
      | None -> false
      | Some (_, _, c, gt) -> Dr_slicing.Global_trace.is_topological gt c)

(* 5. pruning produces a subset *)
let prop_gen_prune_subset =
  QCheck.Test.make ~name:"pruned slice is a subset on generated programs"
    ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 20))
    (fun (seed, sched_seed) ->
      match pipeline seed sched_seed with
      | None -> false
      | Some (_, _, c, gt) ->
        let n = Dr_slicing.Global_trace.length gt in
        let crit = { Dr_slicing.Slicer.crit_pos = n - 1; crit_locs = None } in
        let u = Dr_slicing.Slicer.compute gt crit in
        let p =
          Dr_slicing.Slicer.compute ~pairs:c.Dr_slicing.Collector.pairs gt crit
        in
        let us = Array.to_list u.Dr_slicing.Slicer.positions in
        Dr_slicing.Slicer.size p <= Dr_slicing.Slicer.size u
        && Array.for_all (fun x -> List.mem x us) p.Dr_slicing.Slicer.positions)

(* 6. slice replay computes identical r0 values at slice statements *)
let prop_gen_slice_replay_values =
  QCheck.Test.make
    ~name:"slice replay value equivalence on generated programs" ~count:20
    QCheck.(pair (int_bound 100_000) (int_bound 20))
    (fun (seed, sched_seed) ->
      match pipeline seed sched_seed with
      | None -> false
      | Some (prog, pb, c, gt) -> (
        let n = Dr_slicing.Global_trace.length gt in
        let slice =
          Dr_slicing.Slicer.compute ~pairs:c.Dr_slicing.Collector.pairs gt
            { Dr_slicing.Slicer.crit_pos = n - 1; crit_locs = None }
        in
        match
          try Some (Dr_exeslice.Exclusion.slice_pinball prog pb ~slice ~collector:c)
          with Dr_pinplay.Relogger.Relog_error _ -> None
        with
        | None -> true (* nothing to check if relog declined *)
        | Some (spb, _) ->
          (* original r0-after-instruction per slice statement *)
          let wanted = Hashtbl.create 128 in
          Array.iter
            (fun pos ->
              let r = Dr_slicing.Global_trace.record gt pos in
              Hashtbl.replace wanted
                (r.Dr_slicing.Trace.tid, r.Dr_slicing.Trace.pc, r.Dr_slicing.Trace.instance)
                ())
            slice.Dr_slicing.Slicer.positions;
          let orig = Hashtbl.create 128 in
          let counts = Hashtbl.create 128 in
          let replayer = Dr_pinplay.Replayer.create prog pb in
          let m = Dr_pinplay.Replayer.machine replayer in
          let hooks =
            { Dr_machine.Driver.on_event =
                (fun ev ->
                  let k = (ev.Dr_machine.Event.tid, ev.Dr_machine.Event.pc) in
                  let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
                  Hashtbl.replace counts k i;
                  let key = (ev.Dr_machine.Event.tid, ev.Dr_machine.Event.pc, i) in
                  if Hashtbl.mem wanted key then
                    Hashtbl.replace orig key
                      (Dr_machine.Machine.thread m ev.Dr_machine.Event.tid).Dr_machine.Machine.regs.(0)) }
          in
          ignore (Dr_pinplay.Replayer.resume ~hooks replayer);
          (* slice replay *)
          let sr = Dr_exeslice.Slice_replay.create prog spb in
          let sm = Dr_exeslice.Slice_replay.machine sr in
          let counts2 = Hashtbl.create 128 in
          let ok = ref true in
          let rec go () =
            match Dr_exeslice.Slice_replay.step sr with
            | Dr_exeslice.Slice_replay.Stepped { tid; pc; _ } ->
              let k = (tid, pc) in
              let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts2 k) in
              Hashtbl.replace counts2 k i;
              (match Hashtbl.find_opt orig (tid, pc, i) with
              | Some v ->
                if (Dr_machine.Machine.thread sm tid).Dr_machine.Machine.regs.(0) <> v
                then ok := false
              | None -> ());
              go ()
            | Dr_exeslice.Slice_replay.Injected _ -> go ()
            | _ -> ()
          in
          go ();
          !ok))

(* 7. debugger end-to-end on generated programs: record, replay, continue *)
let prop_gen_debugger =
  QCheck.Test.make ~name:"debugger session on generated programs" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog = compile_seed seed in
      let dbg = Drdebug.Debugger.of_program prog in
      let ok cmd =
        match Drdebug.Debugger.exec dbg cmd with Ok _ -> true | Error _ -> false
      in
      ok "record whole" && ok "replay" && ok "continue" && ok "slice-failure")

(* 8. generation is a pure function of the seed: the same seed yields the
   same program and schedule even when the global RNG is perturbed in
   between (no leaks through Random's default state) *)
let test_gen_deterministic () =
  let cfg = { Dr_lang.Gen.default_cfg with Dr_lang.Gen.max_workers = 3 } in
  for seed = 0 to 49 do
    let p1 = Dr_lang.Gen.program ~cfg seed in
    let s1 = Dr_lang.Gen.schedule ~threads:4 ~steps:64 seed in
    Random.self_init ();
    ignore (Random.bits ());
    let p2 = Dr_lang.Gen.program ~cfg seed in
    let s2 = Dr_lang.Gen.schedule ~threads:4 ~steps:64 seed in
    Alcotest.(check string)
      (Printf.sprintf "program seed %d stable" seed)
      p1 p2;
    if s1 <> s2 then
      Alcotest.failf "schedule seed %d changed across global RNG perturbation"
        seed
  done;
  (* distinct seeds do differ (the seed is actually consumed) *)
  if Dr_lang.Gen.program ~cfg 1 = Dr_lang.Gen.program ~cfg 2 then
    Alcotest.fail "seeds 1 and 2 generated identical programs"

(* 9. the generator emits multi-threaded programs often enough to
   exercise the threaded pipeline *)
let test_gen_threads_present () =
  let cfg = { Dr_lang.Gen.default_cfg with Dr_lang.Gen.max_workers = 2 } in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let spawns = ref 0 and multi = ref 0 in
  for seed = 0 to 99 do
    let src = Dr_lang.Gen.program ~cfg seed in
    if contains_sub src "spawn(" then incr spawns;
    if contains_sub src "worker1" then incr multi
  done;
  if !spawns < 20 then
    Alcotest.failf "only %d/100 generated programs spawn threads" !spawns;
  if !multi < 5 then
    Alcotest.failf "only %d/100 generated programs have 2+ workers" !multi

let () =
  Alcotest.run "gen"
    [ ( "generator determinism",
        [ Alcotest.test_case "same seed, same program" `Quick
            test_gen_deterministic;
          Alcotest.test_case "threaded programs generated" `Quick
            test_gen_threads_present ] );
      ( "generated programs",
        [ QCheck_alcotest.to_alcotest prop_gen_safe;
          QCheck_alcotest.to_alcotest prop_gen_replay;
          QCheck_alcotest.to_alcotest prop_gen_lp_equals_naive;
          QCheck_alcotest.to_alcotest prop_gen_topological;
          QCheck_alcotest.to_alcotest prop_gen_prune_subset;
          QCheck_alcotest.to_alcotest prop_gen_slice_replay_values;
          QCheck_alcotest.to_alcotest prop_gen_debugger ] ) ]
