(* Tests for dr_util: vectors, codec round-trips (including qcheck
   properties), bitsets, stats. *)

let test_vec_basic () =
  let v = Dr_util.Vec.create ~dummy:0 in
  for i = 0 to 99 do
    Dr_util.Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Dr_util.Vec.length v);
  Alcotest.(check int) "get" 42 (Dr_util.Vec.get v 42);
  Alcotest.(check int) "last" 99 (Dr_util.Vec.last v);
  Alcotest.(check int) "pop" 99 (Dr_util.Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Dr_util.Vec.length v);
  Dr_util.Vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Dr_util.Vec.get v 0);
  Alcotest.check_raises "get out of range" (Invalid_argument "Vec.get")
    (fun () -> ignore (Dr_util.Vec.get v 99))

let test_int_vec () =
  let v = Dr_util.Vec.Int_vec.create () in
  for i = 0 to 9999 do
    Dr_util.Vec.Int_vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 10000 (Dr_util.Vec.Int_vec.length v);
  Alcotest.(check int) "get" 300 (Dr_util.Vec.Int_vec.get v 100);
  let a = Dr_util.Vec.Int_vec.to_array v in
  Alcotest.(check int) "array len" 10000 (Array.length a);
  Alcotest.(check int) "array val" 29997 a.(9999)

let test_codec_roundtrip () =
  let e = Dr_util.Codec.encoder () in
  Dr_util.Codec.put_uint e 0;
  Dr_util.Codec.put_uint e 127;
  Dr_util.Codec.put_uint e 128;
  Dr_util.Codec.put_uint e 1_000_000_007;
  Dr_util.Codec.put_int e (-1);
  Dr_util.Codec.put_int e (min_int / 4);
  Dr_util.Codec.put_string e "hello\000world";
  Dr_util.Codec.put_bool e true;
  Dr_util.Codec.put_int_array e [| 1; -2; 3 |];
  let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
  Alcotest.(check int) "u0" 0 (Dr_util.Codec.get_uint d);
  Alcotest.(check int) "u127" 127 (Dr_util.Codec.get_uint d);
  Alcotest.(check int) "u128" 128 (Dr_util.Codec.get_uint d);
  Alcotest.(check int) "u1e9" 1_000_000_007 (Dr_util.Codec.get_uint d);
  Alcotest.(check int) "neg" (-1) (Dr_util.Codec.get_int d);
  Alcotest.(check int) "big neg" (min_int / 4) (Dr_util.Codec.get_int d);
  Alcotest.(check string) "string" "hello\000world" (Dr_util.Codec.get_string d);
  Alcotest.(check bool) "bool" true (Dr_util.Codec.get_bool d);
  Alcotest.(check (array int)) "array" [| 1; -2; 3 |] (Dr_util.Codec.get_int_array d);
  Alcotest.(check bool) "at end" true (Dr_util.Codec.at_end d)

let test_codec_corrupt () =
  let d = Dr_util.Codec.decoder "\xff" in
  Alcotest.check_raises "truncated"
    (Dr_util.Codec.Corrupt "truncated varint") (fun () ->
      ignore (Dr_util.Codec.get_uint d))

(* Zig-zag extremes must survive a round-trip bit-exactly. *)
let test_codec_extremes () =
  List.iter
    (fun x ->
      let e = Dr_util.Codec.encoder () in
      Dr_util.Codec.put_int e x;
      let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
      Alcotest.(check int) (string_of_int x) x (Dr_util.Codec.get_int d);
      Alcotest.(check bool) "consumed" true (Dr_util.Codec.at_end d))
    [ min_int; min_int + 1; -1; 0; 1; max_int - 1; max_int ]

(* Over-long varints (10+ continuation bytes) must be rejected, not
   silently smeared into the sign bit. *)
let test_codec_overlong () =
  let d = Dr_util.Codec.decoder (String.make 10 '\xff') in
  Alcotest.check_raises "overlong" (Dr_util.Codec.Corrupt "varint too long")
    (fun () -> ignore (Dr_util.Codec.get_uint d))

(* A declared count/length larger than the remaining input must fail
   before any allocation proportional to the count. *)
let test_codec_bounded () =
  let huge_count =
    (* varint 2^40 followed by no payload *)
    let e = Dr_util.Codec.encoder () in
    Dr_util.Codec.put_uint e (1 lsl 40);
    Dr_util.Codec.to_string e
  in
  let expect_corrupt what f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted bogus length" what
    | exception Dr_util.Codec.Corrupt _ -> ()
  in
  expect_corrupt "string" (fun () ->
      Dr_util.Codec.get_string (Dr_util.Codec.decoder huge_count));
  expect_corrupt "int array" (fun () ->
      Dr_util.Codec.get_int_array (Dr_util.Codec.decoder huge_count));
  expect_corrupt "list" (fun () ->
      Dr_util.Codec.get_list (Dr_util.Codec.decoder huge_count)
        Dr_util.Codec.get_int);
  expect_corrupt "count helper" (fun () ->
      Dr_util.Codec.get_count (Dr_util.Codec.decoder huge_count) "test")

let prop_codec_extreme_ints =
  QCheck.Test.make ~name:"codec extreme int round-trip" ~count:500
    QCheck.(list (oneof [ int; always min_int; always max_int ]))
    (fun xs ->
      let e = Dr_util.Codec.encoder () in
      List.iter (Dr_util.Codec.put_int e) xs;
      let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
      List.for_all (fun x -> Dr_util.Codec.get_int d = x) xs
      && Dr_util.Codec.at_end d)

let prop_codec_int =
  QCheck.Test.make ~name:"codec int round-trip" ~count:500
    QCheck.(list int)
    (fun xs ->
      let e = Dr_util.Codec.encoder () in
      List.iter (Dr_util.Codec.put_int e) xs;
      let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
      List.for_all (fun x -> Dr_util.Codec.get_int d = x) xs)

let prop_codec_string =
  QCheck.Test.make ~name:"codec string round-trip" ~count:200
    QCheck.(list string)
    (fun xs ->
      let e = Dr_util.Codec.encoder () in
      List.iter (Dr_util.Codec.put_string e) xs;
      let d = Dr_util.Codec.decoder (Dr_util.Codec.to_string e) in
      List.for_all (fun x -> Dr_util.Codec.get_string d = x) xs)

let test_bitset () =
  let b = Dr_util.Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Dr_util.Bitset.cardinal b);
  Dr_util.Bitset.add b 0;
  Dr_util.Bitset.add b 63;
  Dr_util.Bitset.add b 99;
  Alcotest.(check bool) "mem 63" true (Dr_util.Bitset.mem b 63);
  Alcotest.(check bool) "not mem 64" false (Dr_util.Bitset.mem b 64);
  Alcotest.(check int) "cardinal" 3 (Dr_util.Bitset.cardinal b);
  Dr_util.Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Dr_util.Bitset.mem b 63);
  Alcotest.(check (list int)) "to_list" [ 0; 99 ] (Dr_util.Bitset.to_list b);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: out of range")
    (fun () -> ignore (Dr_util.Bitset.mem b 100))

let prop_bitset =
  QCheck.Test.make ~name:"bitset matches reference set" ~count:200
    QCheck.(list (int_bound 499))
    (fun xs ->
      let b = Dr_util.Bitset.create 500 in
      List.iter (Dr_util.Bitset.add b) xs;
      let expect = List.sort_uniq compare xs in
      Dr_util.Bitset.to_list b = expect)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Dr_util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0
    (Dr_util.Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 25.0
    (Dr_util.Stats.percent ~part:1 ~total:4);
  Alcotest.(check (float 1e-9)) "stddev" 1.0
    (Dr_util.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  let lo, hi = Dr_util.Stats.min_max [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "min" 1.0 lo;
  Alcotest.(check (float 1e-9)) "max" 3.0 hi

(* ---- json ---- *)

let test_json_roundtrip () =
  let module J = Dr_util.Json in
  let v =
    J.Obj
      [ ("schema", J.Str "demo-v1");
        ("ok", J.Bool true);
        ("none", J.Null);
        ("count", J.int 42);
        ("ratio", J.Num 0.125);
        ( "items",
          J.List [ J.int 1; J.Str "two \"quoted\"\n"; J.List []; J.Obj [] ] ) ]
  in
  List.iter
    (fun indent ->
      match J.parse (J.to_string ~indent v) with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
    [ true; false ]

let test_json_rejects_bad_input () =
  let module J = Dr_util.Json in
  let bad =
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad;
  Alcotest.check_raises "NaN rejected at emission"
    (Invalid_argument "Json: NaN/infinity is not representable") (fun () ->
      ignore (J.to_string (J.Num Float.nan)))

let test_json_accessors () =
  let module J = Dr_util.Json in
  match J.parse {|{"a": 1.5, "b": [true, "x"], "c": null}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
    Alcotest.(check (option (float 1e-9)))
      "num" (Some 1.5)
      (Option.bind (J.member "a" v) J.to_float);
    (match Option.bind (J.member "b" v) J.to_list with
    | Some [ t; s ] ->
      Alcotest.(check (option bool)) "bool" (Some true) (J.to_bool t);
      Alcotest.(check (option string)) "str" (Some "x") (J.to_str s)
    | _ -> Alcotest.fail "list accessor");
    Alcotest.(check bool) "null member" true (J.member "c" v = Some J.Null);
    Alcotest.(check bool) "missing member" true (J.member "zz" v = None)

(* Metrics moved to the observability library (Dr_obs): its tests live
   in test_obs.ml alongside spans and histograms. *)

(* ---- heap ---- *)

let test_heap_basic () =
  let h = Dr_util.Heap.create ~dummy:"" in
  Alcotest.(check bool) "empty" true (Dr_util.Heap.is_empty h);
  List.iter
    (fun (k, v) -> Dr_util.Heap.push h k v)
    [ (3, "c"); (10, "j"); (1, "a"); (7, "g"); (10, "j2") ];
  Alcotest.(check int) "length" 5 (Dr_util.Heap.length h);
  Alcotest.(check (option int)) "peek max" (Some 10) (Dr_util.Heap.peek_key h);
  let keys = ref [] in
  let rec drain () =
    match Dr_util.Heap.pop h with
    | None -> ()
    | Some (k, _) ->
      keys := k :: !keys;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "descending pop order" [ 10; 10; 7; 3; 1 ]
    (List.rev !keys);
  Alcotest.(check (option int)) "exhausted" None (Dr_util.Heap.peek_key h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops every key in descending order" ~count:100
    QCheck.(list int)
    (fun keys ->
      let h = Dr_util.Heap.create ~dummy:0 in
      List.iter (fun k -> Dr_util.Heap.push h k k) keys;
      let out = ref [] in
      let rec drain () =
        match Dr_util.Heap.pop h with
        | None -> ()
        | Some (k, v) ->
          assert (k = v);
          out := k :: !out;
          drain ()
      in
      drain ();
      (* popped descending = accumulated list ascending *)
      List.rev !out = List.sort (fun a b -> Int.compare b a) keys)

(* ---- domain pool ---- *)

exception Boom of int

let test_pool_map_order () =
  let xs = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun x -> (x * x) + 1) xs in
  List.iter
    (fun domains ->
      Dr_util.Pool.with_pool ~domains (fun p ->
          Alcotest.(check int) "size" (max 1 domains) (Dr_util.Pool.size p);
          let got = Dr_util.Pool.map p (fun x -> (x * x) + 1) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "map @ %d domains deterministic" domains)
            expect got))
    [ 1; 2; 4 ]

let test_pool_reuse () =
  Dr_util.Pool.with_pool ~domains:3 (fun p ->
      (* several batches through the same pool: stale drains from the
         previous batch must not corrupt the next one *)
      for round = 1 to 5 do
        let xs = Array.init (17 * round) (fun i -> i) in
        let got = Dr_util.Pool.map p (fun x -> x + round) xs in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.map (fun x -> x + round) xs)
          got
      done)

let test_pool_exception () =
  Dr_util.Pool.with_pool ~domains:2 (fun p ->
      let ran = Array.make 8 false in
      let tasks =
        Array.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 3 then raise (Boom i))
      in
      (match Dr_util.Pool.run p tasks with
      | () -> Alcotest.fail "task exception was swallowed"
      | exception Boom 3 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      (* the batch is not torn down: every task still ran *)
      Array.iteri
        (fun i r ->
          Alcotest.(check bool) (Printf.sprintf "task %d ran" i) true r)
        ran;
      (* and the pool is still usable afterwards *)
      let got = Dr_util.Pool.map p (fun x -> x * 2) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool survives" [| 2; 4; 6 |] got)

let test_pool_split () =
  (* ranges are contiguous, ascending, near-equal, and cover [0, len) *)
  List.iter
    (fun (chunks, len) ->
      let ranges = Dr_util.Pool.split ~chunks ~len in
      if len <= 0 then
        Alcotest.(check int) "empty" 0 (Array.length ranges)
      else begin
        Alcotest.(check bool) "at most chunks" true
          (Array.length ranges <= max 1 chunks);
        let pos = ref 0 in
        Array.iter
          (fun (lo, hi) ->
            Alcotest.(check int) "contiguous" !pos lo;
            Alcotest.(check bool) "non-empty" true (hi > lo);
            pos := hi)
          ranges;
        Alcotest.(check int) "covers len" len !pos;
        let sizes = Array.map (fun (lo, hi) -> hi - lo) ranges in
        let mn = Array.fold_left min max_int sizes
        and mx = Array.fold_left max 0 sizes in
        Alcotest.(check bool) "near-equal" true (mx - mn <= 1)
      end)
    [ (1, 10); (3, 10); (4, 4); (7, 3); (2, 0); (5, 1); (16, 1000) ]

let prop_pool_map_matches_sequential =
  QCheck.Test.make ~name:"pool map = Array.map at any domain count" ~count:30
    QCheck.(pair (int_range 1 4) (list small_int))
    (fun (domains, xs) ->
      let xs = Array.of_list xs in
      Dr_util.Pool.with_pool ~domains (fun p ->
          Dr_util.Pool.map p (fun x -> x * 7) xs = Array.map (fun x -> x * 7) xs))

let () =
  Alcotest.run "util"
    [ ( "vec",
        [ Alcotest.test_case "poly vec" `Quick test_vec_basic;
          Alcotest.test_case "int vec" `Quick test_int_vec ] );
      ( "codec",
        [ Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "corrupt" `Quick test_codec_corrupt;
          Alcotest.test_case "zig-zag extremes" `Quick test_codec_extremes;
          Alcotest.test_case "overlong varint" `Quick test_codec_overlong;
          Alcotest.test_case "bounded counts" `Quick test_codec_bounded;
          QCheck_alcotest.to_alcotest prop_codec_int;
          QCheck_alcotest.to_alcotest prop_codec_string;
          QCheck_alcotest.to_alcotest prop_codec_extreme_ints ] );
      ( "bitset",
        [ Alcotest.test_case "basic" `Quick test_bitset;
          QCheck_alcotest.to_alcotest prop_bitset ] );
      ("stats", [ Alcotest.test_case "basic" `Quick test_stats ]);
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick
            test_json_rejects_bad_input;
          Alcotest.test_case "accessors" `Quick test_json_accessors ] );
      ( "heap",
        [ Alcotest.test_case "basic" `Quick test_heap_basic;
          QCheck_alcotest.to_alcotest prop_heap_sorts ] );
      ( "pool",
        [ Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "split ranges" `Quick test_pool_split;
          QCheck_alcotest.to_alcotest prop_pool_map_matches_sequential ] ) ]
