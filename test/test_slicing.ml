(* Tests for dr_slicing: trace collection, control dependences, global
   trace construction, LP traversal, and the paper's two precision
   improvements (Fig. 7 indirect jumps, Fig. 8 save/restore pairs). *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let log_whole ?(seed = 3) ?(input = [||]) prog =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
      ~input prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> pb
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

let collect ?(refine = true) ?input ?seed prog =
  let pb = log_whole ?seed ?input prog in
  Dr_slicing.Collector.collect ~refine prog pb

(* Criterion at the last record whose pc holds an [Assert]. *)
let assert_criterion prog gt =
  match
    Dr_slicing.Global_trace.find_last gt ~p:(fun r ->
        match prog.Dr_isa.Program.code.(r.Dr_slicing.Trace.pc) with
        | Dr_isa.Instr.Assert _ -> true
        | _ -> false)
  with
  | Some pos -> { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None }
  | None -> Alcotest.fail "no assert record in trace"

let slice_lines slice = Dr_slicing.Slicer.source_lines slice

(* ---- basic data dependences ---- *)

let test_straightline_data_deps () =
  let src = {|fn main() {
  int a = 1;
  int b = 2;
  int unrelated = 777;
  int c = a + b;
  assert(c == 3, "c");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  Alcotest.(check bool) "a=1 in slice" true (List.mem 2 lines);
  Alcotest.(check bool) "b=2 in slice" true (List.mem 3 lines);
  Alcotest.(check bool) "unrelated NOT in slice" false (List.mem 4 lines);
  Alcotest.(check bool) "c=a+b in slice" true (List.mem 5 lines)

let test_memory_data_dep () =
  let src = {|global int g;
global int h;
fn main() {
  g = 41;
  h = 999;
  int v = g + 1;
  assert(v == 42, "v");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  Alcotest.(check bool) "g=41 in slice" true (List.mem 4 lines);
  Alcotest.(check bool) "h=999 not in slice" false (List.mem 5 lines)

(* ---- control dependences ---- *)

let test_control_dep_if () =
  let src = {|fn main() {
  int c = read();
  int r = 0;
  if (c > 10) {
    r = 1;
  }
  assert(r == 1, "r");
}|} in
  let prog = compile src in
  let c = collect ~input:[| 50 |] prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  (* r=1 is control dependent on the if, which uses c *)
  Alcotest.(check bool) "r=1 in slice" true (List.mem 5 lines);
  Alcotest.(check bool) "if-cond in slice" true (List.mem 4 lines);
  Alcotest.(check bool) "c=read in slice" true (List.mem 2 lines)

let test_control_dep_loop () =
  let src = {|fn main() {
  int n = read();
  int sum = 0;
  for (int i = 0; i < n; i = i + 1) {
    sum = sum + 2;
  }
  assert(sum == 6, "sum");
}|} in
  let prog = compile src in
  let c = collect ~input:[| 3 |] prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  Alcotest.(check bool) "loop body in slice" true (List.mem 5 lines);
  Alcotest.(check bool) "loop head in slice" true (List.mem 4 lines);
  Alcotest.(check bool) "n=read in slice" true (List.mem 2 lines)

(* ---- the paper's Figure 5: multi-threaded atomicity violation ---- *)

let fig5_src = {|global int x;
global int y;
global int z;
fn t1(int n) {
  y = 10;
  x = y + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = z;
  k = k + 1;
  k = k + x;
  join(t);
  assert(k == 1, "atomic region violated");
}|}

(* find a seed where the race bites (t1's write lands before main reads x) *)
let find_failing_seed prog =
  let rec go seed =
    if seed > 2000 then Alcotest.fail "no failing schedule found"
    else begin
      let m = Dr_machine.Machine.create prog in
      let r =
        Dr_machine.Driver.run ~max_steps:100_000 m
          (Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
      in
      match r with
      | Dr_machine.Driver.Terminated (Dr_machine.Machine.Assert_failed _) -> seed
      | _ -> go (seed + 1)
    end
  in
  go 0

let test_fig5_multithreaded_slice () =
  let prog = compile fig5_src in
  let seed = find_failing_seed prog in
  let pb =
    match
      Dr_pinplay.Logger.log
        ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
        prog Dr_pinplay.Logger.Whole
    with
    | Ok (pb, _) -> pb
    | Error e -> Alcotest.failf "log: %a" Dr_pinplay.Logger.pp_error e
  in
  let c = Dr_slicing.Collector.collect prog pb in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  (* the slice must reach across threads: x = y + 1 (line 6) in t1 is the
     root cause, and y = 10 (line 5) feeds it *)
  Alcotest.(check bool) "root cause x=y+1 in slice" true (List.mem 6 lines);
  Alcotest.(check bool) "y=10 in slice" true (List.mem 5 lines);
  Alcotest.(check bool) "k=k+x in slice" true (List.mem 12 lines);
  (* cross-thread edge exists in the collector output *)
  Alcotest.(check bool) "cross-thread order edges" true
    (Array.length c.Dr_slicing.Collector.order_edges > 0)

(* ---- global trace properties ---- *)

let prop_global_trace_topological =
  QCheck.Test.make ~name:"global trace is a valid topological order" ~count:20
    QCheck.(int_bound 100)
    (fun seed ->
      let prog = compile fig5_src in
      let pb =
        match
          Dr_pinplay.Logger.log
            ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
            prog Dr_pinplay.Logger.Whole
        with
        | Ok (pb, _) -> pb
        | Error _ -> Alcotest.fail "log failed"
      in
      let c = Dr_slicing.Collector.collect prog pb in
      let gt = Dr_slicing.Global_trace.construct c in
      Dr_slicing.Global_trace.is_topological gt c
      && Dr_slicing.Global_trace.length gt
         = Dr_slicing.Segment_store.length c.Dr_slicing.Collector.records)

let test_global_trace_positions () =
  let prog = compile fig5_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  for pos = 0 to Dr_slicing.Global_trace.length gt - 1 do
    let r = Dr_slicing.Global_trace.record gt pos in
    Alcotest.(check int) "pos_of_gseq inverse" pos
      (Dr_slicing.Global_trace.position gt ~gseq:r.Dr_slicing.Trace.gseq)
  done

(* ---- LP traversal equals naive traversal ---- *)

(* reference slicer: plain backwards walk, no block skipping, no pruning *)
let naive_slice gt (criterion : Dr_slicing.Slicer.criterion) =
  let wanted = Hashtbl.create 64 in
  let to_include = Hashtbl.create 64 in
  let in_slice = Hashtbl.create 64 in
  let crit = Dr_slicing.Global_trace.record gt criterion.Dr_slicing.Slicer.crit_pos in
  Hashtbl.replace in_slice criterion.Dr_slicing.Slicer.crit_pos ();
  (match criterion.Dr_slicing.Slicer.crit_locs with
  | Some locs -> List.iter (fun l -> Hashtbl.replace wanted l ()) locs
  | None ->
    Array.iter (fun u -> Hashtbl.replace wanted u ()) crit.Dr_slicing.Trace.uses);
  if crit.Dr_slicing.Trace.cd >= 0 then
    Hashtbl.replace to_include
      (Dr_slicing.Global_trace.position gt ~gseq:crit.Dr_slicing.Trace.cd)
      ();
  for pos = criterion.Dr_slicing.Slicer.crit_pos - 1 downto 0 do
    let r = Dr_slicing.Global_trace.record gt pos in
    let inc = ref (Hashtbl.mem to_include pos) in
    Array.iter
      (fun d ->
        if Hashtbl.mem wanted d then begin
          inc := true;
          Hashtbl.remove wanted d
        end)
      r.Dr_slicing.Trace.defs;
    if !inc && not (Hashtbl.mem in_slice pos) then begin
      Hashtbl.replace in_slice pos ();
      Array.iter (fun u -> Hashtbl.replace wanted u ()) r.Dr_slicing.Trace.uses;
      if r.Dr_slicing.Trace.cd >= 0 then
        Hashtbl.replace to_include
          (Dr_slicing.Global_trace.position gt ~gseq:r.Dr_slicing.Trace.cd)
          ()
    end
  done;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) in_slice [])

let prop_lp_equals_naive =
  QCheck.Test.make ~name:"LP slicing equals naive backwards traversal"
    ~count:15
    QCheck.(pair (int_bound 50) (int_bound 3))
    (fun (seed, block_exp) ->
      let prog = compile fig5_src in
      let pb =
        match
          Dr_pinplay.Logger.log
            ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
            prog Dr_pinplay.Logger.Whole
        with
        | Ok (pb, _) -> pb
        | Error _ -> Alcotest.fail "log failed"
      in
      let c = Dr_slicing.Collector.collect prog pb in
      let gt = Dr_slicing.Global_trace.construct c in
      let crit =
        { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length gt - 1;
          crit_locs = None }
      in
      (* tiny blocks stress the skipping logic *)
      let lp = Dr_slicing.Lp.prepare ~block_size:(8 lsl block_exp) gt in
      let reference = naive_slice gt crit in
      let scan = Dr_slicing.Slicer.compute ~lp ~indexed:false gt crit in
      let fast = Dr_slicing.Slicer.compute ~lp gt crit in
      Array.to_list scan.Dr_slicing.Slicer.positions = reference
      && Array.to_list fast.Dr_slicing.Slicer.positions = reference)

let test_lp_skips_blocks () =
  (* a long irrelevant prefix must be skipped block-wise *)
  let src = {|global int g;
fn main() {
  for (int i = 0; i < 3000; i = i + 1) { g = g + 1; }
  int a = 5;
  int b = a + 1;
  assert(b == 6, "b");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let lp = Dr_slicing.Lp.prepare ~block_size:256 gt in
  let slice =
    Dr_slicing.Slicer.compute ~lp ~indexed:false gt (assert_criterion prog gt)
  in
  Alcotest.(check bool) "blocks were skipped" true
    (slice.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks > 0);
  (* the loop must not be in the slice *)
  Alcotest.(check bool) "loop body not in slice" false
    (List.mem 3 (slice_lines slice))

(* ---- Figure 7: indirect-jump control-dependence precision ---- *)

(* Hand-written program mirroring the paper's assembly: a jump-table
   switch with no bounds check, so the only path from the scrutinee to
   the case body is the indirect jump itself.  The switch runs twice with
   different inputs so that dynamic refinement observes both targets
   (with a single observed target the jump is dynamically unconditional
   and carries no control dependence). *)
let fig7_prog () =
  let open Dr_isa.Instr in
  Dr_isa.Program.make ~name:"fig7" ~entry:0
    ~data:[ (16, 7); (17, 9) ]  (* jump table: case 0 -> pc 7, case 1 -> pc 9 *)
    ~data_end:18
    [ (* 0 *) Mov (5, Imm 2);           (* loop counter *)
      (* 1 *) Sys Read;                 (* c = fgetc(fin) *)
      (* 2 *) Mov (4, Imm 7);           (* d = 7 *)
      (* 3 *) Mov (1, Imm 16);          (* table base *)
      (* 4 *) Bin (Add, 1, 1, Reg 0);
      (* 5 *) Load (2, 1, 0);
      (* 6 *) Jind 2;                   (* switch(c) *)
      (* 7 *) Bin (Add, 3, 4, Imm 2);   (* case 0: w = d + 2 *)
      (* 8 *) Jmp 10;
      (* 9 *) Bin (Sub, 3, 4, Imm 2);   (* case 1: w = d - 2 *)
      (* 10 *) Mov (1, Reg 3);
      (* 11 *) Sys Print;
      (* 12 *) Bin (Sub, 5, 5, Imm 1);
      (* 13 *) Cmp (5, Imm 0);
      (* 14 *) Jcc (Gt, 1);
      (* 15 *) Halt ]

let fig7_slice ~refine =
  let prog = fig7_prog () in
  let pb = log_whole ~input:[| 0; 1 |] prog in
  let c = Dr_slicing.Collector.collect ~refine prog pb in
  let gt = Dr_slicing.Global_trace.construct c in
  (* criterion: first execution of w = d + 2 at pc 7 *)
  let pos =
    match Dr_slicing.Global_trace.find ~tid:0 ~pc:7 ~instance:1 gt with
    | Some p -> p
    | None -> Alcotest.fail "case body not executed"
  in
  let slice =
    Dr_slicing.Slicer.compute gt
      { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None }
  in
  List.map
    (fun (_, pc, _) -> pc)
    (Array.to_list (Dr_slicing.Slicer.statements slice))

let test_fig7_imprecise_without_refinement () =
  let pcs = fig7_slice ~refine:false in
  (* data dep on d is found, but the control dependence through the
     indirect jump is missed: the read() never enters the slice *)
  Alcotest.(check bool) "d=7 in slice" true (List.mem 2 pcs);
  Alcotest.(check bool) "switch jind missed" false (List.mem 6 pcs);
  Alcotest.(check bool) "c=read() missed" false (List.mem 1 pcs)

let test_fig7_precise_with_refinement () =
  let pcs = fig7_slice ~refine:true in
  Alcotest.(check bool) "d=7 in slice" true (List.mem 2 pcs);
  Alcotest.(check bool) "switch jind recovered" true (List.mem 6 pcs);
  Alcotest.(check bool) "table load recovered" true (List.mem 5 pcs);
  Alcotest.(check bool) "c=read() recovered" true (List.mem 1 pcs)

(* ---- Figure 8: save/restore spurious-dependence pruning ---- *)

let fig8_src = {|global int sink;
fn q(int v) {
  int local = v * 3;
  sink = local;
}
fn main() {
  int c = read();
  int e = 2;
  if (c > 0) {
    q(c);
  }
  int w = e + 5;
  assert(w == 7, "w");
}|}

let fig8_slice ~prune =
  let prog = compile fig8_src in
  let pb = log_whole ~input:[| 1 |] prog in
  let c = Dr_slicing.Collector.collect prog pb in
  let gt = Dr_slicing.Global_trace.construct c in
  let pairs = if prune then Some c.Dr_slicing.Collector.pairs else None in
  let slice =
    Dr_slicing.Slicer.compute ?pairs gt (assert_criterion prog gt)
  in
  (slice, c)

let test_fig8_unpruned_is_spurious () =
  let slice, c = fig8_slice ~prune:false in
  let lines = slice_lines slice in
  (* e is held in a callee-saved register that q saves/restores; without
     pruning the slice follows the restore->save chain and drags in the
     call, the guard and the read *)
  Alcotest.(check bool) "pairs were confirmed" true
    (Hashtbl.length c.Dr_slicing.Collector.pairs > 0);
  Alcotest.(check bool) "guard dragged in (spurious)" true (List.mem 9 lines);
  Alcotest.(check bool) "c=read dragged in (spurious)" true (List.mem 7 lines)

let test_fig8_pruned_is_precise () =
  let slice, _ = fig8_slice ~prune:true in
  let lines = slice_lines slice in
  Alcotest.(check bool) "e=2 still in slice" true (List.mem 8 lines);
  Alcotest.(check bool) "w=e+5 in slice" true (List.mem 12 lines);
  Alcotest.(check bool) "guard pruned" false (List.mem 9 lines);
  Alcotest.(check bool) "read pruned" false (List.mem 7 lines)

let test_fig8_pruned_subset () =
  let unpruned, _ = fig8_slice ~prune:false in
  let pruned, _ = fig8_slice ~prune:true in
  let u = Array.to_list unpruned.Dr_slicing.Slicer.positions in
  let p = Array.to_list pruned.Dr_slicing.Slicer.positions in
  Alcotest.(check bool) "pruned smaller" true (List.length p < List.length u);
  Alcotest.(check bool) "pruned subset of unpruned" true
    (List.for_all (fun x -> List.mem x u) p)

(* ---- slice files ---- *)

let test_slice_file_roundtrip () =
  let prog = compile fig5_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let path = Filename.temp_file "drdebug" ".slice" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dr_slicing.Slicer.save_file path slice;
      let stmts = Dr_slicing.Slicer.load_file_statements path in
      Alcotest.(check int) "statement count preserved"
        (Dr_slicing.Slicer.size slice)
        (List.length stmts);
      let direct =
        Array.to_list (Dr_slicing.Slicer.statements slice)
        |> List.map (fun (t, p, i) -> (t, p, i))
      in
      let loaded = List.map (fun (t, p, i, _) -> (t, p, i)) stmts in
      Alcotest.(check bool) "statements preserved" true (direct = loaded))

let test_slice_file_rejects_bad_input () =
  let expect_error what contents =
    let path = Filename.temp_file "drdebug" ".slice" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        match Dr_slicing.Slicer.load_file_statements path with
        | _ -> Alcotest.failf "%s: bad slice file accepted" what
        | exception Dr_slicing.Slicer.Slice_file_error _ -> ())
  in
  expect_error "empty file" "";
  expect_error "missing header" "stmt 0 1 1 2\n";
  expect_error "wrong header" "# something else\nstmt 0 1 1 2\n";
  expect_error "non-numeric field" "# drdebug slice v1\nstmt 0 x 1 2\n";
  expect_error "wrong arity" "# drdebug slice v1\nstmt 0 1\n"

(* ---- dependence navigation ---- *)

let test_edge_navigation () =
  let src = {|fn main() {
  int a = 1;
  int b = a + 1;
  assert(b == 2, "b");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let crit = assert_criterion prog gt in
  let slice = Dr_slicing.Slicer.compute gt crit in
  (* the criterion must have at least one outgoing dependence edge, and
     following edges backwards must stay within the slice *)
  let deps = Dr_slicing.Slicer.deps_of slice crit.Dr_slicing.Slicer.crit_pos in
  Alcotest.(check bool) "criterion has deps" true (deps <> []);
  List.iter
    (fun (_, target) ->
      Alcotest.(check bool) "dep target in slice" true
        (Dr_slicing.Slicer.mem slice target))
    deps

(* ---- additional slicing coverage ---- *)

let test_crit_locs_narrow () =
  (* slicing for a specific location chases only that location *)
  let src = {|global int p;
global int q;
fn main() {
  p = 11;
  q = 22;
  int both = p + q;
  assert(both == 0, "x");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let crit_pos = (assert_criterion prog gt).Dr_slicing.Slicer.crit_pos in
  let p_addr =
    match
      List.find_opt (fun (n, _, _) -> n = "p")
        prog.Dr_isa.Program.debug.Dr_isa.Debug_info.globals
    with
    | Some (_, a, _) -> a
    | None -> Alcotest.fail "no p"
  in
  let slice =
    Dr_slicing.Slicer.compute gt
      { Dr_slicing.Slicer.crit_pos; crit_locs = Some [ Dr_isa.Loc.mem p_addr ] }
  in
  let lines = slice_lines slice in
  Alcotest.(check bool) "p=11 in slice" true (List.mem 4 lines);
  Alcotest.(check bool) "q=22 NOT in slice" false (List.mem 5 lines)

let test_deps_uses_symmetry () =
  let prog = compile {|fn main() {
  int a = 1;
  int b = a + 2;
  assert(b == 0, "b");
}|} in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  (* every recorded edge appears in both directions of navigation *)
  Array.iter
    (fun (e : Dr_slicing.Slicer.edge) ->
      let fwd = Dr_slicing.Slicer.deps_of slice e.Dr_slicing.Slicer.from_pos in
      let bwd = Dr_slicing.Slicer.uses_of slice e.Dr_slicing.Slicer.to_pos in
      Alcotest.(check bool) "forward direction" true
        (List.exists (fun (_, p) -> p = e.Dr_slicing.Slicer.to_pos) fwd);
      Alcotest.(check bool) "backward direction" true
        (List.exists (fun (_, p) -> p = e.Dr_slicing.Slicer.from_pos) bwd))
    slice.Dr_slicing.Slicer.edges

let test_recursion_control_deps () =
  (* the Xin–Zhang frame rule: statements in a recursive callee are
     control dependent on the guard of the recursive call *)
  let src = {|global int acc;
fn down(int n) {
  if (n > 0) {
    acc = acc + n;
    down(n - 1);
  }
  return 0;
}
fn main() {
  int r = read();
  down(r);
  assert(acc == 0, "acc");
}|} in
  let prog = compile src in
  let c = collect ~input:[| 3 |] prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  Alcotest.(check bool) "recursive accumulation in slice" true (List.mem 4 lines);
  Alcotest.(check bool) "guard in slice" true (List.mem 3 lines);
  Alcotest.(check bool) "read in slice" true (List.mem 10 lines)

let test_slice_of_nondet_value () =
  (* rand() results reach the criterion through the slice *)
  let src = {|fn main() {
  int r = rand();
  int masked = r & 7;
  assert(masked == 99, "masked");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let lines = slice_lines slice in
  Alcotest.(check bool) "rand in slice" true (List.mem 2 lines)

let prop_block_size_irrelevant =
  QCheck.Test.make ~name:"slice independent of LP block size" ~count:10
    QCheck.(int_range 0 6)
    (fun exp ->
      let prog = compile fig5_src in
      let c = collect prog in
      let gt = Dr_slicing.Global_trace.construct c in
      let crit = assert_criterion prog gt in
      let s1 =
        Dr_slicing.Slicer.compute
          ~lp:(Dr_slicing.Lp.prepare ~block_size:(1 lsl exp) gt)
          ~indexed:false gt crit
      in
      let s2 = Dr_slicing.Slicer.compute gt crit in
      s1.Dr_slicing.Slicer.positions = s2.Dr_slicing.Slicer.positions)

let test_slice_stats_sane () =
  let prog = compile fig5_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let st = slice.Dr_slicing.Slicer.stats in
  Alcotest.(check bool) "visited bounded by trace" true
    (st.Dr_slicing.Slicer.visited <= Dr_slicing.Global_trace.length gt);
  Alcotest.(check bool) "slice smaller than visited+1" true
    (Dr_slicing.Slicer.size slice <= st.Dr_slicing.Slicer.visited + 1);
  Alcotest.(check bool) "time nonneg" true (st.Dr_slicing.Slicer.slice_time >= 0.0)

let test_no_clustering_same_slice () =
  (* the clustering heuristic must not change slice contents *)
  let prog = compile fig5_src in
  let c = collect prog in
  let gt1 = Dr_slicing.Global_trace.construct ~cluster:true c in
  let gt2 = Dr_slicing.Global_trace.construct ~cluster:false c in
  Alcotest.(check bool) "both topological" true
    (Dr_slicing.Global_trace.is_topological gt1 c
    && Dr_slicing.Global_trace.is_topological gt2 c);
  let stmts gt =
    let crit = assert_criterion prog gt in
    let s = Dr_slicing.Slicer.compute gt crit in
    List.sort compare (Array.to_list (Dr_slicing.Slicer.statements s))
  in
  Alcotest.(check bool) "same statements either way" true (stmts gt1 = stmts gt2)

(* ---- indexed fast path, def index, and fixed skip logic ---- *)

(* canonical edge view: the drivers guarantee the same edge multiset,
   not the same array order *)
let canonical_edges (s : Dr_slicing.Slicer.t) =
  let tag = function
    | Dr_slicing.Slicer.Data l -> (0, l)
    | Dr_slicing.Slicer.Data_bypassed l -> (1, l)
    | Dr_slicing.Slicer.Control -> (2, -1)
  in
  Array.to_list s.Dr_slicing.Slicer.edges
  |> List.map (fun (e : Dr_slicing.Slicer.edge) ->
         let k, loc = tag e.Dr_slicing.Slicer.kind in
         (e.Dr_slicing.Slicer.from_pos, e.Dr_slicing.Slicer.to_pos, k, loc))
  |> List.sort compare

let check_drivers_agree ?pairs ~lp gt crit =
  let compute ~indexed ~block_skipping =
    Dr_slicing.Slicer.compute ~lp ?pairs ~indexed ~block_skipping gt crit
  in
  let fast = compute ~indexed:true ~block_skipping:true in
  let skip = compute ~indexed:false ~block_skipping:true in
  let noskip = compute ~indexed:false ~block_skipping:false in
  Alcotest.(check bool) "skip/noskip positions identical" true
    (skip.Dr_slicing.Slicer.positions = noskip.Dr_slicing.Slicer.positions);
  Alcotest.(check bool) "indexed positions identical" true
    (fast.Dr_slicing.Slicer.positions = skip.Dr_slicing.Slicer.positions);
  Alcotest.(check bool) "skip/noskip edges identical" true
    (canonical_edges skip = canonical_edges noskip);
  Alcotest.(check bool) "indexed edges identical" true
    (canonical_edges fast = canonical_edges skip);
  (fast, skip, noskip)

let test_final_partial_block_criterion () =
  (* criterion inside the trace's final, partial LP block: the clamped
     block top must still allow skipping the irrelevant prefix, and all
     drivers must agree *)
  let src = {|global int g;
fn main() {
  for (int i = 0; i < 800; i = i + 1) { g = g + 1; }
  int a = 5;
  int b = a + 1;
  assert(b == 6, "b");
}|} in
  let prog = compile src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let n = Dr_slicing.Global_trace.length gt in
  (* a block size that does NOT divide the trace length, so the last
     block is partial and its nominal range end exceeds n-1 *)
  let block_size = (n / 7) + 3 in
  let lp = Dr_slicing.Lp.prepare ~block_size gt in
  let crit = assert_criterion prog gt in
  Alcotest.(check bool) "criterion is in the final block" true
    (Dr_slicing.Lp.block_of lp crit.Dr_slicing.Slicer.crit_pos
    = lp.Dr_slicing.Lp.num_blocks - 1);
  Alcotest.(check bool) "final block is partial" true
    (snd (Dr_slicing.Lp.block_range lp (lp.Dr_slicing.Lp.num_blocks - 1)) > n - 1);
  let _, skip, _ = check_drivers_agree ~lp gt crit in
  Alcotest.(check bool) "irrelevant prefix blocks skipped" true
    (skip.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.skipped_blocks > 0)

let test_deferred_bypass_in_skippable_block () =
  (* fig8 variant with a long irrelevant pad loop between the real def
     of e and the save/restore pair: the deferred want's save sits past
     blocks that are skippable for every ordinary want, so the skip
     test's deferred clause and the indexed driver's deferral candidate
     are both exercised *)
  let src = {|global int sink;
fn q(int v) {
  int local = v * 3;
  sink = local;
}
fn main() {
  int c = read();
  int e = 2;
  int pad = 0;
  for (int i = 0; i < 300; i = i + 1) { pad = pad + 1; }
  if (c > 0) {
    q(c);
  }
  int w = e + 5;
  assert(w == 7, "w");
}|} in
  let prog = compile src in
  let pb = log_whole ~input:[| 1 |] prog in
  let c = Dr_slicing.Collector.collect prog pb in
  let gt = Dr_slicing.Global_trace.construct c in
  Alcotest.(check bool) "save/restore pairs confirmed" true
    (Hashtbl.length c.Dr_slicing.Collector.pairs > 0);
  let lp = Dr_slicing.Lp.prepare ~block_size:64 gt in
  let crit = assert_criterion prog gt in
  let fast, _, _ =
    check_drivers_agree ~pairs:c.Dr_slicing.Collector.pairs ~lp gt crit
  in
  let lines = slice_lines fast in
  Alcotest.(check bool) "e=2 still in slice (past the bypass)" true
    (List.mem 8 lines);
  Alcotest.(check bool) "guard pruned" false (List.mem 11 lines);
  Alcotest.(check bool) "read pruned" false (List.mem 7 lines);
  Alcotest.(check bool) "pad loop not in slice" false (List.mem 10 lines)

let prop_drivers_agree_on_generated =
  QCheck.Test.make
    ~name:"indexed/scan-skip/scan-noskip identical on generated workloads"
    ~count:12
    QCheck.(pair (int_bound 1000) (int_range 3 8))
    (fun (seed, block_exp) ->
      let src = Dr_lang.Gen.program seed in
      let prog =
        match Dr_lang.Codegen.compile_result ~name:"gen" src with
        | Ok p -> p
        | Error e -> Alcotest.failf "gen program failed to compile: %s" e
      in
      let pb =
        match
          Dr_pinplay.Logger.log
            ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 3 })
            prog Dr_pinplay.Logger.Whole
        with
        | Ok (pb, _) -> pb
        | Error _ -> Alcotest.fail "log failed"
      in
      let c = Dr_slicing.Collector.collect prog pb in
      let gt = Dr_slicing.Global_trace.construct c in
      let lp = Dr_slicing.Lp.prepare ~block_size:(1 lsl block_exp) gt in
      let crit =
        { Dr_slicing.Slicer.crit_pos = Dr_slicing.Global_trace.length gt - 1;
          crit_locs = None }
      in
      let compute ~indexed ~block_skipping =
        Dr_slicing.Slicer.compute ~lp ~pairs:c.Dr_slicing.Collector.pairs
          ~indexed ~block_skipping gt crit
      in
      let fast = compute ~indexed:true ~block_skipping:true in
      let skip = compute ~indexed:false ~block_skipping:true in
      let noskip = compute ~indexed:false ~block_skipping:false in
      fast.Dr_slicing.Slicer.positions = skip.Dr_slicing.Slicer.positions
      && skip.Dr_slicing.Slicer.positions = noskip.Dr_slicing.Slicer.positions
      && canonical_edges fast = canonical_edges skip
      && canonical_edges skip = canonical_edges noskip)

let test_def_index () =
  let prog = compile fig5_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let idx = Dr_slicing.Def_index.build gt in
  let n = Dr_slicing.Global_trace.length gt in
  Alcotest.(check int) "trace_len" n (Dr_slicing.Def_index.trace_len idx);
  Alcotest.(check bool) "has locations" true
    (Dr_slicing.Def_index.num_locations idx > 0);
  (* every per-location array is strictly ascending and its entries
     really define the location *)
  Dr_slicing.Def_index.iter idx (fun loc a ->
      Array.iteri
        (fun i p ->
          if i > 0 then
            Alcotest.(check bool) "ascending" true (a.(i - 1) < p);
          let r = Dr_slicing.Global_trace.record gt p in
          Alcotest.(check bool) "position defines loc" true
            (Array.mem loc r.Dr_slicing.Trace.defs))
        a);
  (* binary search agrees with a linear reference on every (loc, pos) *)
  let linear_latest loc pos =
    let best = ref (-1) in
    for p = 0 to pos do
      let r = Dr_slicing.Global_trace.record gt p in
      if Array.mem loc r.Dr_slicing.Trace.defs then best := p
    done;
    !best
  in
  let some_locs = ref [] in
  Dr_slicing.Def_index.iter idx (fun loc _ ->
      if List.length !some_locs < 8 then some_locs := loc :: !some_locs);
  List.iter
    (fun loc ->
      List.iter
        (fun pos ->
          Alcotest.(check int)
            (Printf.sprintf "latest_at_or_before loc=%d pos=%d" loc pos)
            (linear_latest loc pos)
            (Dr_slicing.Def_index.latest_at_or_before idx ~loc ~pos))
        [ 0; 1; n / 2; n - 1 ])
    !some_locs;
  Alcotest.(check int) "unknown loc" (-1)
    (Dr_slicing.Def_index.latest_at_or_before idx ~loc:max_int ~pos:(n - 1))

let test_indexed_find () =
  let prog = compile fig5_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let n = Dr_slicing.Global_trace.length gt in
  (* the indexed find must locate every record by (tid, pc, instance) *)
  for pos = 0 to n - 1 do
    let r = Dr_slicing.Global_trace.record gt pos in
    Alcotest.(check (option int))
      (Printf.sprintf "find pos=%d" pos)
      (Some pos)
      (Dr_slicing.Global_trace.find ~tid:r.Dr_slicing.Trace.tid
         ~pc:r.Dr_slicing.Trace.pc ~instance:r.Dr_slicing.Trace.instance gt)
  done;
  Alcotest.(check (option int)) "missing instance" None
    (Dr_slicing.Global_trace.find ~tid:0 ~pc:0 ~instance:max_int gt);
  Alcotest.(check (option int)) "missing pc" None
    (Dr_slicing.Global_trace.find ~tid:0 ~pc:max_int ~instance:1 gt);
  (* find_last_at agrees with the predicate-based scan *)
  let r0 = Dr_slicing.Global_trace.record gt (n - 1) in
  Alcotest.(check (option int)) "find_last_at = find_last"
    (Dr_slicing.Global_trace.find_last gt ~p:(fun r ->
         r.Dr_slicing.Trace.tid = r0.Dr_slicing.Trace.tid
         && r.Dr_slicing.Trace.pc = r0.Dr_slicing.Trace.pc))
    (Dr_slicing.Global_trace.find_last_at gt ~tid:r0.Dr_slicing.Trace.tid
       ~pc:r0.Dr_slicing.Trace.pc);
  (* pc_positions is ascending *)
  let occ =
    Dr_slicing.Global_trace.pc_positions gt ~tid:r0.Dr_slicing.Trace.tid
      ~pc:r0.Dr_slicing.Trace.pc
  in
  Array.iteri
    (fun i p -> if i > 0 then Alcotest.(check bool) "ascending" true (occ.(i - 1) < p))
    occ

(* ---- prune.ml unit tests: static candidates and dynamic confirmation
   driven by hand, without the collector in the loop ---- *)

(* a program whose helper has real prologue pushes / epilogue pops *)
let prune_src = {|global int sink;
fn helper(int v) {
  int a = v + 1;
  sink = a;
}
fn main() {
  int keep = 5;
  helper(2);
  assert(keep == 5, "keep");
}|}

let test_prune_static_candidates () =
  let prog = compile prune_src in
  let cfg = Dr_cfg.Cfg.build prog in
  let cands =
    Dr_slicing.Prune.static_candidates prog
      ~functions:(Dr_cfg.Cfg.functions cfg)
  in
  Alcotest.(check bool) "found candidate saves" true
    (Hashtbl.length cands.Dr_slicing.Prune.saves > 0);
  Alcotest.(check bool) "found candidate restores" true
    (Hashtbl.length cands.Dr_slicing.Prune.restores > 0);
  (* every candidate save pc is a Push, every restore pc a Pop *)
  Hashtbl.iter
    (fun pc r ->
      match prog.Dr_isa.Program.code.(pc) with
      | Dr_isa.Instr.Push r' -> Alcotest.(check bool) "push reg" true (r = r')
      | i ->
        Alcotest.failf "candidate save pc %d is %s, not a push" pc
          (Format.asprintf "%a" Dr_isa.Instr.pp i))
    cands.Dr_slicing.Prune.saves;
  Hashtbl.iter
    (fun pc r ->
      match prog.Dr_isa.Program.code.(pc) with
      | Dr_isa.Instr.Pop r' -> Alcotest.(check bool) "pop reg" true (r = r')
      | i ->
        Alcotest.failf "candidate restore pc %d is %s, not a pop" pc
          (Format.asprintf "%a" Dr_isa.Instr.pp i))
    cands.Dr_slicing.Prune.restores;
  (* max_save 0 disables the scan entirely *)
  let none =
    Dr_slicing.Prune.static_candidates ~max_save:0 prog
      ~functions:(Dr_cfg.Cfg.functions cfg)
  in
  Alcotest.(check int) "max_save 0: no saves" 0
    (Hashtbl.length none.Dr_slicing.Prune.saves)

(* hand-driven dynamic confirmation: a push/pop of the same register,
   slot and value across one call confirms a pair *)
let hand_state () =
  let prog = compile prune_src in
  let cfg = Dr_cfg.Cfg.build prog in
  Dr_slicing.Prune.create_state
    (Dr_slicing.Prune.static_candidates prog
       ~functions:(Dr_cfg.Cfg.functions cfg))

let test_prune_confirms_matching_pair () =
  let st = hand_state () in
  let reg = 3 in
  Dr_slicing.Prune.on_call st 0;
  Dr_slicing.Prune.on_save st ~tid:0 ~pc:10 ~reg ~addr:100 ~value:42 ~gseq:5;
  Dr_slicing.Prune.on_restore st ~tid:0 ~pc:20 ~reg ~addr:100 ~value:42 ~gseq:9;
  Dr_slicing.Prune.on_ret st 0;
  Alcotest.(check (option int)) "restore at gseq 9 bypasses to save gseq 5"
    (Some 5)
    (Dr_slicing.Prune.bypass st.Dr_slicing.Prune.pairs ~gseq:9 ~reg)

let test_prune_partial_restore_not_confirmed () =
  let st = hand_state () in
  let reg = 3 in
  (* the pop reads a DIFFERENT value than the push wrote (the callee
     clobbered the slot): the pair must NOT be confirmed — bypassing it
     would skip a real definition *)
  Dr_slicing.Prune.on_call st 0;
  Dr_slicing.Prune.on_save st ~tid:0 ~pc:10 ~reg ~addr:100 ~value:42 ~gseq:5;
  Dr_slicing.Prune.on_restore st ~tid:0 ~pc:20 ~reg ~addr:100 ~value:41 ~gseq:9;
  Alcotest.(check (option int)) "value mismatch: unconfirmed" None
    (Dr_slicing.Prune.bypass st.Dr_slicing.Prune.pairs ~gseq:9 ~reg);
  (* different slot, same value: also unconfirmed *)
  Dr_slicing.Prune.on_restore st ~tid:0 ~pc:20 ~reg ~addr:101 ~value:42 ~gseq:11;
  Alcotest.(check (option int)) "slot mismatch: unconfirmed" None
    (Dr_slicing.Prune.bypass st.Dr_slicing.Prune.pairs ~gseq:11 ~reg);
  (* saves of an inner frame are invisible after its ret *)
  Dr_slicing.Prune.on_call st 0;
  Dr_slicing.Prune.on_save st ~tid:0 ~pc:10 ~reg ~addr:200 ~value:7 ~gseq:15;
  Dr_slicing.Prune.on_ret st 0;
  Dr_slicing.Prune.on_restore st ~tid:0 ~pc:20 ~reg ~addr:200 ~value:7 ~gseq:19;
  Alcotest.(check (option int)) "popped frame: unconfirmed" None
    (Dr_slicing.Prune.bypass st.Dr_slicing.Prune.pairs ~gseq:19 ~reg)

let test_prune_bypass_wrong_reg () =
  let st = hand_state () in
  Dr_slicing.Prune.on_call st 0;
  Dr_slicing.Prune.on_save st ~tid:0 ~pc:10 ~reg:3 ~addr:100 ~value:42 ~gseq:5;
  Dr_slicing.Prune.on_restore st ~tid:0 ~pc:20 ~reg:3 ~addr:100 ~value:42 ~gseq:9;
  (* a confirmed pair only bypasses lookups for its own register *)
  Alcotest.(check (option int)) "other register: no bypass" None
    (Dr_slicing.Prune.bypass st.Dr_slicing.Prune.pairs ~gseq:9 ~reg:4)

let test_prune_frame_glue () =
  Alcotest.(check bool) "mov fp, sp is glue" true
    (Dr_slicing.Prune.is_frame_glue
       (Dr_isa.Instr.Mov (Dr_isa.Reg.fp, Dr_isa.Instr.Reg Dr_isa.Reg.sp)));
  Alcotest.(check bool) "sub sp, sp, 4 is glue" true
    (Dr_slicing.Prune.is_frame_glue
       (Dr_isa.Instr.Bin
          (Dr_isa.Instr.Sub, Dr_isa.Reg.sp, Dr_isa.Reg.sp, Dr_isa.Instr.Imm 4)));
  Alcotest.(check bool) "ordinary add is not glue" false
    (Dr_slicing.Prune.is_frame_glue
       (Dr_isa.Instr.Bin (Dr_isa.Instr.Add, 2, 3, Dr_isa.Instr.Imm 1)))

(* ---- resource governance: segments, budgets, degradation ---- *)

let spill_budget () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "drdebug-test-spill-%d" (Unix.getpid ()))
  in
  Dr_util.Budget.create ~mem_bytes:0 ~spill_dir:dir ()

let cleanup_spill budget =
  let dir = Dr_util.Budget.spill_dir budget in
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let loop_src = {|fn main() {
  int n = 40;
  int sum = 0;
  for (int i = 0; i < n; i = i + 1) {
    sum = sum + 2;
  }
  assert(sum == 80, "sum");
}|}

let test_segment_spill_roundtrip () =
  let prog = compile loop_src in
  let c = collect prog in
  let budget = spill_budget () in
  Fun.protect ~finally:(fun () -> cleanup_spill budget) @@ fun () ->
  let store =
    Dr_slicing.Segment_store.rebuild ~budget ~seg_records:32 ~cache_segments:2
      c.Dr_slicing.Collector.records
  in
  let n = Dr_slicing.Segment_store.length store in
  Alcotest.(check int) "same length" n
    (Dr_slicing.Segment_store.length c.Dr_slicing.Collector.records);
  Alcotest.(check bool) "actually spilled" true
    (Dr_slicing.Segment_store.spilled_segments store > 0);
  Alcotest.(check bool) "no longer resident" false
    (Dr_slicing.Segment_store.is_resident store);
  (* every record reads back byte-identical, in both scan orders (the
     LRU cache sees hits and misses) *)
  for i = 0 to n - 1 do
    let a = Dr_slicing.Segment_store.get c.Dr_slicing.Collector.records i in
    let b = Dr_slicing.Segment_store.get store i in
    if a <> b then Alcotest.failf "record %d differs after spill" i
  done;
  for i = n - 1 downto 0 do
    let a = Dr_slicing.Segment_store.get c.Dr_slicing.Collector.records i in
    let b = Dr_slicing.Segment_store.get store i in
    if a <> b then Alcotest.failf "record %d differs on reverse scan" i
  done;
  (* and the whole pipeline on the spilled store yields the same slice *)
  let gt = Dr_slicing.Global_trace.construct c in
  let clean = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let gt' =
    Dr_slicing.Global_trace.construct
      { c with Dr_slicing.Collector.records = store }
  in
  let spilled = Dr_slicing.Slicer.compute gt' (assert_criterion prog gt') in
  Alcotest.(check bool) "identical slice positions" true
    (clean.Dr_slicing.Slicer.positions = spilled.Dr_slicing.Slicer.positions)

let test_segment_corrupt_detected () =
  let prog = compile loop_src in
  let c = collect prog in
  let budget = spill_budget () in
  Fun.protect ~finally:(fun () -> cleanup_spill budget) @@ fun () ->
  let store =
    Dr_slicing.Segment_store.rebuild ~budget ~seg_records:32 ~cache_segments:1
      c.Dr_slicing.Collector.records
  in
  let paths = Dr_slicing.Segment_store.spilled_paths store in
  Alcotest.(check bool) "have spilled paths" true (paths <> []);
  let _, victim = List.nth paths (List.length paths - 1) in
  (* flip one bit in the middle of the last segment *)
  let ic = open_in_bin victim in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  let b = Bytes.of_string buf in
  Bytes.set b (len / 2) (Char.chr (Char.code (Bytes.get b (len / 2)) lxor 1));
  let oc = open_out_bin victim in
  output_bytes oc b;
  close_out oc;
  (* reading every record must surface Segment_corrupt, never garbage *)
  match
    for i = 0 to Dr_slicing.Segment_store.length store - 1 do
      ignore (Dr_slicing.Segment_store.get store i)
    done
  with
  | () -> Alcotest.fail "bit flip went undetected"
  | exception Dr_util.Budget.Resource_error (Dr_util.Budget.Segment_corrupt _)
    -> ()

let test_watchdog_truncates_slice () =
  let prog = compile loop_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let crit = assert_criterion prog gt in
  let clean = Dr_slicing.Slicer.compute gt crit in
  Alcotest.(check bool) "clean run not truncated" false
    clean.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.truncated;
  (* an already-expired watchdog stops the traversal immediately *)
  let wd = Dr_util.Budget.watchdog ~what:"test" ~limit_s:0.0 in
  ignore (Dr_util.Budget.expired wd);
  let partial = Dr_slicing.Slicer.compute ~watchdog:wd gt crit in
  Alcotest.(check bool) "marked truncated" true
    partial.Dr_slicing.Slicer.stats.Dr_slicing.Slicer.truncated;
  (* sound subset: every position of the partial slice is in the full one *)
  Array.iter
    (fun p ->
      if not (Array.mem p clean.Dr_slicing.Slicer.positions) then
        Alcotest.failf "truncated slice has spurious position %d" p)
    partial.Dr_slicing.Slicer.positions;
  Alcotest.(check bool) "partial is smaller" true
    (Array.length partial.Dr_slicing.Slicer.positions
    < Array.length clean.Dr_slicing.Slicer.positions)

let test_governed_ladder_scan () =
  let prog = compile loop_src in
  let c = collect prog in
  let gt = Dr_slicing.Global_trace.construct c in
  let crit = assert_criterion prog gt in
  let clean = Dr_slicing.Slicer.compute gt crit in
  (* a 1-byte memory budget cannot fit the definition index: the ladder
     must step down to the scan driver and still produce the same slice *)
  let budget = Dr_util.Budget.create ~mem_bytes:1 () in
  let g = Dr_slicing.Slicer.compute_governed ~budget gt crit in
  Alcotest.(check string) "degraded to scan" "scan"
    (Dr_slicing.Slicer.rung_name g.Dr_slicing.Slicer.g_rung);
  Alcotest.(check bool) "same slice on the scan rung" true
    (clean.Dr_slicing.Slicer.positions
    = g.Dr_slicing.Slicer.g_slice.Dr_slicing.Slicer.positions);
  Alcotest.(check bool) "degradation recorded" true
    (Dr_util.Budget.degradations budget <> []);
  (* a roomy budget keeps the indexed rung *)
  let roomy = Dr_util.Budget.create ~mem_bytes:max_int ()  in
  let g' = Dr_slicing.Slicer.compute_governed ~budget:roomy gt crit in
  Alcotest.(check string) "roomy budget stays indexed" "indexed"
    (Dr_slicing.Slicer.rung_name g'.Dr_slicing.Slicer.g_rung)

(* satellite: a genuine order-edge cycle must raise the structured
   [Cycle] carrying the blocked record window, not stall or die on a
   bare failure *)
let test_cycle_structured_error () =
  let prog = compile loop_src in
  let cfg = Dr_cfg.Cfg.build prog in
  let mk gseq tid =
    { Dr_slicing.Trace.gseq; tid; pc = 0; instance = 1; lidx = 0;
      defs = [||]; uses = [||]; cd = -1; flags = 0; line = -1 }
  in
  (* two threads, one record each, with contradictory access-order
     edges: 0 before 1 AND 1 before 0 *)
  let c =
    { Dr_slicing.Collector.records =
        Dr_slicing.Segment_store.of_array [| mk 0 0; mk 1 1 |];
      per_thread = [| [| 0 |]; [| 1 |] |];
      order_edges = [| (0, 1); (1, 0) |];
      indirect_targets = [];
      pairs = Hashtbl.create 1;
      cfg;
      collect_time = 0.0 }
  in
  match Dr_slicing.Global_trace.construct c with
  | _ -> Alcotest.fail "cyclic edges must not merge"
  | exception Dr_slicing.Global_trace.Cycle info ->
    Alcotest.(check int) "nothing emitted" 0
      info.Dr_slicing.Global_trace.cy_emitted;
    Alcotest.(check int) "two records total" 2
      info.Dr_slicing.Global_trace.cy_total;
    let heads = info.Dr_slicing.Global_trace.cy_heads in
    Alcotest.(check int) "both heads blocked" 2 (List.length heads);
    List.iter
      (fun h ->
        Alcotest.(check bool) "head has unsatisfied in-edges" true
          (h.Dr_slicing.Global_trace.ch_indeg > 0))
      heads;
    let msg = Dr_slicing.Global_trace.cycle_message info in
    Alcotest.(check bool) "message names the stall" true
      (String.length msg > 0)

let () =
  Alcotest.run "slicing"
    [ ( "data deps",
        [ Alcotest.test_case "straight line" `Quick test_straightline_data_deps;
          Alcotest.test_case "memory" `Quick test_memory_data_dep ] );
      ( "control deps",
        [ Alcotest.test_case "if" `Quick test_control_dep_if;
          Alcotest.test_case "loop" `Quick test_control_dep_loop ] );
      ( "multi-threaded (fig 5)",
        [ Alcotest.test_case "cross-thread slice" `Quick
            test_fig5_multithreaded_slice;
          QCheck_alcotest.to_alcotest prop_global_trace_topological;
          Alcotest.test_case "positions" `Quick test_global_trace_positions ] );
      ( "lp",
        [ QCheck_alcotest.to_alcotest prop_lp_equals_naive;
          Alcotest.test_case "skips blocks" `Quick test_lp_skips_blocks ] );
      ( "fig 7 (indirect jumps)",
        [ Alcotest.test_case "imprecise without refinement" `Quick
            test_fig7_imprecise_without_refinement;
          Alcotest.test_case "precise with refinement" `Quick
            test_fig7_precise_with_refinement ] );
      ( "fig 8 (save/restore)",
        [ Alcotest.test_case "unpruned spurious" `Quick
            test_fig8_unpruned_is_spurious;
          Alcotest.test_case "pruned precise" `Quick test_fig8_pruned_is_precise;
          Alcotest.test_case "pruned subset" `Quick test_fig8_pruned_subset ] );
      ( "slice objects",
        [ Alcotest.test_case "file round-trip" `Quick test_slice_file_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick
            test_slice_file_rejects_bad_input;
          Alcotest.test_case "edge navigation" `Quick test_edge_navigation ] );
      ( "coverage",
        [ Alcotest.test_case "narrow criterion locs" `Quick test_crit_locs_narrow;
          Alcotest.test_case "deps/uses symmetry" `Quick test_deps_uses_symmetry;
          Alcotest.test_case "recursion control deps" `Quick
            test_recursion_control_deps;
          Alcotest.test_case "nondet in slice" `Quick test_slice_of_nondet_value;
          QCheck_alcotest.to_alcotest prop_block_size_irrelevant;
          Alcotest.test_case "stats sane" `Quick test_slice_stats_sane;
          Alcotest.test_case "clustering invariant" `Quick
            test_no_clustering_same_slice ] );
      ( "prune units",
        [ Alcotest.test_case "static candidates" `Quick
            test_prune_static_candidates;
          Alcotest.test_case "matching pair confirmed" `Quick
            test_prune_confirms_matching_pair;
          Alcotest.test_case "partial restore unconfirmed" `Quick
            test_prune_partial_restore_not_confirmed;
          Alcotest.test_case "wrong register no bypass" `Quick
            test_prune_bypass_wrong_reg;
          Alcotest.test_case "frame glue predicate" `Quick
            test_prune_frame_glue ] );
      ( "fast path",
        [ Alcotest.test_case "final partial block criterion" `Quick
            test_final_partial_block_criterion;
          Alcotest.test_case "deferred bypass in skippable block" `Quick
            test_deferred_bypass_in_skippable_block;
          QCheck_alcotest.to_alcotest prop_drivers_agree_on_generated;
          Alcotest.test_case "def index" `Quick test_def_index;
          Alcotest.test_case "indexed find" `Quick test_indexed_find ] );
      ( "robustness",
        [ Alcotest.test_case "spill round-trip" `Quick
            test_segment_spill_roundtrip;
          Alcotest.test_case "corrupt segment detected" `Quick
            test_segment_corrupt_detected;
          Alcotest.test_case "watchdog truncates" `Quick
            test_watchdog_truncates_slice;
          Alcotest.test_case "governed ladder" `Quick test_governed_ladder_scan;
          Alcotest.test_case "cycle structured error" `Quick
            test_cycle_structured_error ] ) ]
