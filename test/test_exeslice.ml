(* Tests for dr_exeslice: exclusion-region construction, slice pinball
   generation, and slice replay with value-equivalence at slice
   statements (the paper's key §4 property). *)

let compile src =
  match Dr_lang.Codegen.compile_result ~name:"test" src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "compile error: %s" msg

let log_whole ?(seed = 3) ?(input = [||]) prog =
  match
    Dr_pinplay.Logger.log
      ~policy:(Dr_machine.Driver.Seeded { seed; max_quantum = 4 })
      ~input prog Dr_pinplay.Logger.Whole
  with
  | Ok (pb, _) -> pb
  | Error e -> Alcotest.failf "logging failed: %a" Dr_pinplay.Logger.pp_error e

let assert_criterion prog gt =
  match
    Dr_slicing.Global_trace.find_last gt ~p:(fun r ->
        match prog.Dr_isa.Program.code.(r.Dr_slicing.Trace.pc) with
        | Dr_isa.Instr.Assert _ -> true
        | _ -> false)
  with
  | Some pos -> { Dr_slicing.Slicer.crit_pos = pos; crit_locs = None }
  | None -> Alcotest.fail "no assert record in trace"

(* full pipeline: program -> region pinball -> slice -> slice pinball *)
let pipeline ?seed ?input src =
  let prog = compile src in
  let pb = log_whole ?seed ?input prog in
  let collector = Dr_slicing.Collector.collect prog pb in
  let gt = Dr_slicing.Global_trace.construct collector in
  let slice = Dr_slicing.Slicer.compute gt (assert_criterion prog gt) in
  let spb, stats = Dr_exeslice.Exclusion.slice_pinball prog pb ~slice ~collector in
  (prog, pb, collector, gt, slice, spb, stats)

let slicing_src = {|global int g;
global int noise;
fn main() {
  int a = 2;
  for (int i = 0; i < 50; i = i + 1) {
    noise = noise + i;
  }
  g = a * 10;
  int w = g + 1;
  assert(w == 0, "w");
}|}

let test_exclusion_regions_structure () =
  let _, _, collector, _, slice, _, stats = pipeline slicing_src in
  let exclusions, _ = Dr_exeslice.Exclusion.build ~slice ~collector in
  Alcotest.(check bool) "some exclusions" true (exclusions <> []);
  Alcotest.(check bool) "region count matches" true
    (stats.Dr_exeslice.Exclusion.regions = List.length exclusions);
  Alcotest.(check int) "included + excluded = total"
    stats.Dr_exeslice.Exclusion.total_records
    (stats.Dr_exeslice.Exclusion.included_records
    + stats.Dr_exeslice.Exclusion.excluded_records);
  (* the noisy loop must be excluded: far fewer included than total *)
  Alcotest.(check bool) "most records excluded" true
    (stats.Dr_exeslice.Exclusion.excluded_records
    > stats.Dr_exeslice.Exclusion.included_records)

let test_slice_pinball_smaller () =
  let _, pb, _, _, _, spb, _ = pipeline slicing_src in
  let full = Dr_pinplay.Pinball.schedule_instructions pb in
  let sliced = Dr_pinplay.Pinball.step_count spb in
  Alcotest.(check bool) "slice executes fewer instructions" true (sliced < full);
  Alcotest.(check bool) "nonempty" true (sliced > 0)

let test_slice_replay_reaches_assert () =
  let prog, _, _, _, _, spb, _ = pipeline slicing_src in
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  let result = Dr_exeslice.Slice_replay.run sr in
  match result with
  | Dr_exeslice.Slice_replay.Finished
      (Dr_machine.Machine.Assert_failed { msg; _ }) ->
    Alcotest.(check string) "assert reproduced in slice replay" "w" msg
  | Dr_exeslice.Slice_replay.End_of_slice ->
    (* acceptable: the assert is the last event *)
    ()
  | _ -> Alcotest.fail "slice replay did not reach the failure"

(* The central correctness property: replaying the slice pinball computes
   the SAME VALUES at every slice instruction as the original region
   replay, even though non-slice code is skipped and its effects
   injected. *)
let values_at_slice_statements prog pb slice =
  (* original replay: record (tid,pc,instance) -> (mem_write_value or r0) *)
  let wanted = Hashtbl.create 256 in
  Array.iter
    (fun pos ->
      let r =
        Dr_slicing.Global_trace.record slice.Dr_slicing.Slicer.gt pos
      in
      Hashtbl.replace wanted
        (r.Dr_slicing.Trace.tid, r.Dr_slicing.Trace.pc, r.Dr_slicing.Trace.instance)
        ())
    slice.Dr_slicing.Slicer.positions;
  let values = Hashtbl.create 256 in
  let counts = Hashtbl.create 256 in
  let record_value tid pc mev_write m =
    let k = (tid, pc) in
    let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
    Hashtbl.replace counts k i;
    if Hashtbl.mem wanted (tid, pc, i) then begin
      let th = Dr_machine.Machine.thread m tid in
      Hashtbl.replace values (tid, pc, i)
        (mev_write, th.Dr_machine.Machine.regs.(0))
    end
  in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev -> ()
          |> fun () -> ignore ev) }
  in
  ignore hooks;
  let replayer = Dr_pinplay.Replayer.create prog pb in
  let m = Dr_pinplay.Replayer.machine replayer in
  let hooks =
    { Dr_machine.Driver.on_event =
        (fun ev ->
          record_value ev.Dr_machine.Event.tid ev.Dr_machine.Event.pc
            ev.Dr_machine.Event.mem_write_value m) }
  in
  ignore (Dr_pinplay.Replayer.resume ~hooks replayer);
  values

let test_slice_replay_value_equivalence () =
  let prog, pb, _, _, slice, spb, _ = pipeline slicing_src in
  let original = values_at_slice_statements prog pb slice in
  (* now replay the slice pinball and compare *)
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  let m = Dr_exeslice.Slice_replay.machine sr in
  let counts = Hashtbl.create 256 in
  let mismatches = ref [] in
  let rec go () =
    match Dr_exeslice.Slice_replay.step sr with
    | Dr_exeslice.Slice_replay.Stepped { tid; pc; _ } ->
      let k = (tid, pc) in
      let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
      Hashtbl.replace counts k i;
      (match Hashtbl.find_opt original (tid, pc, i) with
      | Some (_, orig_r0) ->
        let th = Dr_machine.Machine.thread m tid in
        if th.Dr_machine.Machine.regs.(0) <> orig_r0 then
          mismatches := (tid, pc, i) :: !mismatches
      | None -> ());
      go ()
    | Dr_exeslice.Slice_replay.Injected _ -> go ()
    | _ -> ()
  in
  go ();
  Alcotest.(check (list (triple int int int))) "identical r0 at slice steps" []
    !mismatches

let multithreaded_src = {|global int x;
global int y;
global int scratch;
fn t1(int n) {
  for (int i = 0; i < 30; i = i + 1) { scratch = scratch + i; }
  y = 10;
  x = y + 1;
}
fn main() {
  int t = spawn(t1, 0);
  int k = 0;
  for (int i = 0; i < 30; i = i + 1) { k = k + 0; }
  join(t);
  int v = x + k;
  assert(v == 11, "v");
}|}

let test_multithreaded_slice_replay () =
  let prog, _, _, _, _, spb, stats = pipeline multithreaded_src in
  Alcotest.(check bool) "some exclusion happened" true
    (stats.Dr_exeslice.Exclusion.excluded_records > 0);
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  match Dr_exeslice.Slice_replay.run sr with
  | Dr_exeslice.Slice_replay.Finished
      ( Dr_machine.Machine.Assert_failed _ | Dr_machine.Machine.Exited _ )
  | Dr_exeslice.Slice_replay.End_of_slice -> ()
  | Dr_exeslice.Slice_replay.Finished o ->
    Alcotest.failf "unexpected outcome %a"
      (fun fmt () -> Dr_machine.Machine.pp_outcome fmt o) ()
  | _ -> Alcotest.fail "unexpected result"

let test_step_statement_advances_lines () =
  let prog, _, _, _, _, spb, _ = pipeline slicing_src in
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  (* walk statement by statement; lines must come from the slice and the
     walk must terminate *)
  let steps = ref 0 in
  let rec go () =
    match Dr_exeslice.Slice_replay.step_statement sr with
    | Dr_exeslice.Slice_replay.Stepped { line; _ } ->
      incr steps;
      Alcotest.(check bool) "line known" true (line >= 1);
      if !steps < 1000 then go ()
    | _ -> ()
  in
  go ();
  Alcotest.(check bool) "stepped through several statements" true (!steps >= 3)

let test_sync_preserved_in_slice_pinball () =
  (* lock/unlock/spawn/join events survive exclusion even when they are
     not in the slice *)
  let src = {|global int x;
global int m;
global int noise;
fn t1(int n) {
  lock(&m);
  noise = noise + 1;
  unlock(&m);
  x = 5;
}
fn main() {
  int t = spawn(t1, 0);
  lock(&m);
  noise = noise + 2;
  unlock(&m);
  join(t);
  assert(x == 0, "x clean");
}|} in
  let prog, _, _, _, _, spb, _ = pipeline src in
  (* count sync instructions in the slice events *)
  let sync_steps = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Dr_pinplay.Pinball.Step { pc; _ } -> (
        match prog.Dr_isa.Program.code.(pc) with
        | Dr_isa.Instr.Sys
            ( Dr_isa.Instr.Spawn | Dr_isa.Instr.Join | Dr_isa.Instr.Lock
            | Dr_isa.Instr.Unlock ) ->
          incr sync_steps
        | _ -> ())
      | _ -> ())
    spb.Dr_pinplay.Pinball.slice_events;
  (* spawn + join + 2x(lock+unlock) = at least 6 *)
  Alcotest.(check bool) "sync instructions preserved" true (!sync_steps >= 6);
  (* and the slice pinball still replays to the assert *)
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  match Dr_exeslice.Slice_replay.run sr with
  | Dr_exeslice.Slice_replay.Finished (Dr_machine.Machine.Assert_failed _)
  | Dr_exeslice.Slice_replay.End_of_slice -> ()
  | _ -> Alcotest.fail "slice replay failed"

let prop_slice_replay_equivalence =
  QCheck.Test.make
    ~name:"slice replay computes original values under random schedules"
    ~count:10
    QCheck.(int_bound 50)
    (fun seed ->
      let prog, pb, _, _, slice, spb, _ =
        pipeline ~seed multithreaded_src
      in
      let original = values_at_slice_statements prog pb slice in
      let sr = Dr_exeslice.Slice_replay.create prog spb in
      let m = Dr_exeslice.Slice_replay.machine sr in
      let counts = Hashtbl.create 256 in
      let ok = ref true in
      let rec go () =
        match Dr_exeslice.Slice_replay.step sr with
        | Dr_exeslice.Slice_replay.Stepped { tid; pc; _ } ->
          let k = (tid, pc) in
          let i = 1 + Option.value ~default:0 (Hashtbl.find_opt counts k) in
          Hashtbl.replace counts k i;
          (match Hashtbl.find_opt original (tid, pc, i) with
          | Some (_, orig_r0) ->
            let th = Dr_machine.Machine.thread m tid in
            if th.Dr_machine.Machine.regs.(0) <> orig_r0 then ok := false
          | None -> ());
          go ()
        | Dr_exeslice.Slice_replay.Injected _ -> go ()
        | _ -> ()
      in
      go ();
      !ok)

(* ---- additional exeslice coverage ---- *)

let test_slice_pinball_serialization () =
  let prog, _, _, _, _, spb, _ = pipeline slicing_src in
  let spb' = Dr_pinplay.Pinball.of_bytes (Dr_pinplay.Pinball.to_bytes spb) in
  Alcotest.(check bool) "events preserved" true
    (spb.Dr_pinplay.Pinball.slice_events = spb'.Dr_pinplay.Pinball.slice_events);
  Alcotest.(check bool) "injections preserved" true
    (spb.Dr_pinplay.Pinball.injections = spb'.Dr_pinplay.Pinball.injections);
  (* the deserialized slice pinball replays identically *)
  let run pb =
    let sr = Dr_exeslice.Slice_replay.create prog pb in
    let rec go acc =
      match Dr_exeslice.Slice_replay.step sr with
      | Dr_exeslice.Slice_replay.Stepped { tid; pc; _ } -> go ((tid, pc) :: acc)
      | Dr_exeslice.Slice_replay.Injected _ -> go acc
      | _ -> List.rev acc
    in
    go []
  in
  Alcotest.(check bool) "same steps after round-trip" true (run spb = run spb')

let test_full_slice_is_identity () =
  (* a slice containing everything yields a slice pinball with no
     exclusions: replay equals region replay *)
  let src = {|fn main() {
  int a = 1;
  int b = a + 1;
  assert(b == 0, "b");
}|} in
  let prog = compile src in
  let pb = log_whole prog in
  let collector = Dr_slicing.Collector.collect prog pb in
  let gt = Dr_slicing.Global_trace.construct collector in
  (* fabricate an everything-slice by slicing the criterion with every
     location wanted — instead, build exclusions directly from an
     all-inclusive bitset via Exclusion.build on a slice that contains
     every position *)
  let crit = assert_criterion prog gt in
  let slice = Dr_slicing.Slicer.compute gt crit in
  (* small straight-line program: the failure slice includes nearly
     everything except prologue scaffolding; at minimum the slice pinball
     must replay to the assert *)
  let spb, _ = Dr_exeslice.Exclusion.slice_pinball prog pb ~slice ~collector in
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  match Dr_exeslice.Slice_replay.run sr with
  | Dr_exeslice.Slice_replay.Finished (Dr_machine.Machine.Assert_failed _)
  | Dr_exeslice.Slice_replay.End_of_slice -> ()
  | _ -> Alcotest.fail "full-ish slice replay failed"

let test_remaining_counter () =
  let prog, _, _, _, _, spb, _ = pipeline slicing_src in
  let sr = Dr_exeslice.Slice_replay.create prog spb in
  let before = Dr_exeslice.Slice_replay.remaining sr in
  Alcotest.(check int) "all events pending" (Array.length spb.Dr_pinplay.Pinball.slice_events) before;
  ignore (Dr_exeslice.Slice_replay.step sr);
  Alcotest.(check int) "one consumed" (before - 1)
    (Dr_exeslice.Slice_replay.remaining sr)

let test_forced_sync_stats_consistent () =
  let prog, _, collector, gt, slice, _, stats = pipeline multithreaded_src in
  ignore prog;
  (* every record is classified exactly once *)
  Alcotest.(check int) "partition"
    (Dr_slicing.Segment_store.length collector.Dr_slicing.Collector.records)
    (stats.Dr_exeslice.Exclusion.included_records
    + stats.Dr_exeslice.Exclusion.excluded_records);
  (* included >= slice size (forced sync adds, never removes) *)
  Alcotest.(check bool) "included covers slice" true
    (stats.Dr_exeslice.Exclusion.included_records
    >= Dr_slicing.Slicer.size slice);
  ignore gt

let () =
  Alcotest.run "exeslice"
    [ ( "exclusions",
        [ Alcotest.test_case "structure" `Quick test_exclusion_regions_structure;
          Alcotest.test_case "slice pinball smaller" `Quick
            test_slice_pinball_smaller;
          Alcotest.test_case "sync preserved" `Quick
            test_sync_preserved_in_slice_pinball ] );
      ( "slice replay",
        [ Alcotest.test_case "reaches assert" `Quick
            test_slice_replay_reaches_assert;
          Alcotest.test_case "value equivalence" `Quick
            test_slice_replay_value_equivalence;
          Alcotest.test_case "multithreaded" `Quick test_multithreaded_slice_replay;
          Alcotest.test_case "statement stepping" `Quick
            test_step_statement_advances_lines;
          QCheck_alcotest.to_alcotest prop_slice_replay_equivalence ] );
      ( "coverage",
        [ Alcotest.test_case "slice pinball serialization" `Quick
            test_slice_pinball_serialization;
          Alcotest.test_case "near-full slice" `Quick test_full_slice_is_identity;
          Alcotest.test_case "remaining counter" `Quick test_remaining_counter;
          Alcotest.test_case "stats partition" `Quick
            test_forced_sync_stats_consistent ] ) ]
